//! The CDR decoder.

use std::sync::Arc;

use zc_buffers::{CopyLayer, CopyMeter, ZcBytes};

use crate::endian::{self, ByteOrder};
use crate::{CdrError, CdrResult, MAX_CDR_LENGTH};

/// Decodes values from a CDR stream.
///
/// Mirrors [`crate::CdrEncoder`]: alignment is relative to the start of the
/// buffer, every read is bounds-checked, and the decoder optionally carries
/// the blocks that the transport *deposited* out of band so that
/// [`crate::ZcOctetSeq`] demarshaling can resolve descriptor indices without
/// copying ("a pointer is set to this buffer allowing the demarshaling
/// routine to directly access the data and pass it further without copying",
/// §4.5).
pub struct CdrDecoder<'a> {
    buf: &'a [u8],
    pos: usize,
    order: ByteOrder,
    meter: Option<Arc<CopyMeter>>,
    /// Out-of-band blocks, taken by index exactly once each.
    deposits: Vec<Option<ZcBytes>>,
    zc_enabled: bool,
}

impl<'a> CdrDecoder<'a> {
    /// Decode `buf`, which was encoded in `order`.
    pub fn new(buf: &'a [u8], order: ByteOrder) -> CdrDecoder<'a> {
        CdrDecoder {
            buf,
            pos: 0,
            order,
            meter: None,
            deposits: Vec::new(),
            zc_enabled: false,
        }
    }

    /// Attach a copy meter; bulk octet reads are accounted at
    /// [`CopyLayer::Demarshal`].
    pub fn with_meter(mut self, meter: Arc<CopyMeter>) -> CdrDecoder<'a> {
        self.meter = Some(meter);
        self
    }

    /// Provide the deposited blocks for this message and enable the
    /// zero-copy demarshal path.
    pub fn with_deposits(mut self, blocks: Vec<ZcBytes>) -> CdrDecoder<'a> {
        self.deposits = blocks.into_iter().map(Some).collect();
        self.zc_enabled = true;
        self
    }

    /// Like [`CdrDecoder::with_deposits`] but accepting partially consumed
    /// slots — used when demarshaling resumes across several decoder
    /// instances over the same message (multi-result replies).
    pub fn with_deposit_slots(mut self, slots: Vec<Option<ZcBytes>>) -> CdrDecoder<'a> {
        self.deposits = slots;
        self.zc_enabled = true;
        self
    }

    /// Surrender the deposit slots (consumed entries stay `None`, so
    /// descriptor indices remain stable for a follow-up decoder).
    pub fn into_deposit_slots(self) -> Vec<Option<ZcBytes>> {
        self.deposits
    }

    /// The stream's byte order.
    pub fn order(&self) -> ByteOrder {
        self.order
    }

    /// Whether the deposit path is active for this message.
    pub fn zc_enabled(&self) -> bool {
        self.zc_enabled
    }

    /// Current read offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> CdrResult<&'a [u8]> {
        // Overflow-proof and panic-free: `checked_add` guards the cursor
        // arithmetic and `get` turns any out-of-window read into an error,
        // so no length field in the stream can reach a slice panic.
        let buf = self.buf;
        let s = self
            .pos
            .checked_add(n)
            .and_then(|end| buf.get(self.pos..end))
            .ok_or(CdrError::OutOfBounds {
                need: n,
                have: self.remaining(),
            })?;
        self.pos = self.pos.saturating_add(n);
        Ok(s)
    }

    /// Borrow the next `n` raw bytes without alignment or metering.
    pub fn read_raw(&mut self, n: usize) -> CdrResult<&'a [u8]> {
        self.take(n)
    }

    /// Skip `n` bytes (e.g. to resume after an already-parsed header while
    /// keeping alignment relative to the buffer start).
    pub fn skip(&mut self, n: usize) -> CdrResult<()> {
        self.take(n)?;
        Ok(())
    }

    /// Skip padding so the next read is `n`-aligned.
    pub fn align(&mut self, n: usize) -> CdrResult<()> {
        debug_assert!(n.is_power_of_two() && n <= 8);
        let misalign = self.pos % n;
        if misalign != 0 {
            self.take(n - misalign)?;
        }
        Ok(())
    }

    /// `octet`
    pub fn read_octet(&mut self) -> CdrResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// `boolean`
    pub fn read_bool(&mut self) -> CdrResult<bool> {
        match self.take(1)?[0] {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(CdrError::InvalidBool(b)),
        }
    }

    /// `char`
    pub fn read_char(&mut self) -> CdrResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// `short`
    pub fn read_i16(&mut self) -> CdrResult<i16> {
        self.align(2)?;
        Ok(endian::read_i16(self.order, self.take(2)?))
    }

    /// `unsigned short`
    pub fn read_u16(&mut self) -> CdrResult<u16> {
        self.align(2)?;
        Ok(endian::read_u16(self.order, self.take(2)?))
    }

    /// `long`
    pub fn read_i32(&mut self) -> CdrResult<i32> {
        self.align(4)?;
        Ok(endian::read_i32(self.order, self.take(4)?))
    }

    /// `unsigned long`
    pub fn read_u32(&mut self) -> CdrResult<u32> {
        self.align(4)?;
        Ok(endian::read_u32(self.order, self.take(4)?))
    }

    /// `long long`
    pub fn read_i64(&mut self) -> CdrResult<i64> {
        self.align(8)?;
        Ok(endian::read_i64(self.order, self.take(8)?))
    }

    /// `unsigned long long`
    pub fn read_u64(&mut self) -> CdrResult<u64> {
        self.align(8)?;
        Ok(endian::read_u64(self.order, self.take(8)?))
    }

    /// `float`
    pub fn read_f32(&mut self) -> CdrResult<f32> {
        self.align(4)?;
        Ok(endian::read_f32(self.order, self.take(4)?))
    }

    /// `double`
    pub fn read_f64(&mut self) -> CdrResult<f64> {
        self.align(8)?;
        Ok(endian::read_f64(self.order, self.take(8)?))
    }

    /// Validate a length/count field against [`MAX_CDR_LENGTH`] and the
    /// bytes actually remaining (when each element is at least one byte).
    fn checked_len(&self, n: u32, min_elem_bytes: usize) -> CdrResult<usize> {
        let n64 = n as u64;
        if n64 > MAX_CDR_LENGTH {
            return Err(CdrError::LengthOverflow(n64));
        }
        let n = n as usize;
        if min_elem_bytes > 0 && n.saturating_mul(min_elem_bytes) > self.remaining() {
            return Err(CdrError::OutOfBounds {
                need: n.saturating_mul(min_elem_bytes),
                have: self.remaining(),
            });
        }
        Ok(n)
    }

    /// `string`: ulong length including NUL, UTF-8 bytes, NUL.
    pub fn read_string(&mut self) -> CdrResult<String> {
        let len = self.read_u32()?;
        let len = self.checked_len(len, 1)?;
        if len == 0 {
            // A zero length is malformed (even "" encodes as length 1).
            return Err(CdrError::InvalidString);
        }
        let bytes = self.take(len)?;
        if bytes[len - 1] != 0 {
            return Err(CdrError::InvalidString);
        }
        std::str::from_utf8(&bytes[..len - 1])
            .map(str::to_owned)
            .map_err(|_| CdrError::InvalidString)
    }

    /// Bulk octet read: ulong count then the raw bytes, copied out (and
    /// metered at [`CopyLayer::Demarshal`]) — the conventional
    /// `sequence<octet>` path.
    pub fn read_octet_seq(&mut self) -> CdrResult<Vec<u8>> {
        let len = self.read_u32()?;
        let len = self.checked_len(len, 1)?;
        let src = self.take(len)?;
        let mut out = vec![0u8; len];
        match &self.meter {
            Some(m) => m.copy(CopyLayer::Demarshal, &mut out, src),
            None => out.copy_from_slice(src),
        }
        Ok(out)
    }

    /// Borrow a bulk octet region without copying (used where the caller can
    /// work in place on the receive buffer).
    pub fn read_octet_seq_borrowed(&mut self) -> CdrResult<&'a [u8]> {
        let len = self.read_u32()?;
        let len = self.checked_len(len, 1)?;
        self.take(len)
    }

    /// Resolve a deposit descriptor: take block `index`, checking the
    /// announced length. Each block may be taken exactly once.
    pub fn take_deposit(&mut self, index: u32, announced_len: usize) -> CdrResult<ZcBytes> {
        let slot = self
            .deposits
            .get_mut(index as usize)
            .ok_or(CdrError::BadDepositIndex(index))?;
        match slot.take() {
            Some(block) if block.len() == announced_len => Ok(block),
            Some(block) => {
                // Leave the block in place: a length mismatch is a protocol
                // error, not a consumption.
                let deposited = block.len();
                *slot = Some(block);
                Err(CdrError::DepositLengthMismatch {
                    announced: announced_len,
                    deposited,
                })
            }
            None => Err(CdrError::BadDepositIndex(index)),
        }
    }

    /// Decode a nested encapsulation: reads the ulong length, then hands a
    /// sub-decoder (with the encapsulation's own byte order and alignment
    /// origin) to `f`.
    pub fn read_encapsulation<T>(
        &mut self,
        f: impl FnOnce(&mut CdrDecoder<'_>) -> CdrResult<T>,
    ) -> CdrResult<T> {
        let len = self.read_u32()?;
        let len = self.checked_len(len, 1)?;
        let body = self.take(len)?;
        if body.is_empty() {
            return Err(CdrError::OutOfBounds { need: 1, have: 0 });
        }
        let order = ByteOrder::from_flag(body[0] & 1 == 1);
        let mut inner = CdrDecoder::new(body, order);
        // Consume the flag octet so inner alignment matches the encoder.
        inner.read_octet()?;
        f(&mut inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::CdrEncoder;

    #[test]
    fn primitive_roundtrip_both_orders() {
        for order in [ByteOrder::Big, ByteOrder::Little] {
            let mut e = CdrEncoder::new(order);
            e.write_octet(7);
            e.write_bool(true);
            e.write_i16(-2);
            e.write_u32(0xDEAD_BEEF);
            e.write_f64(-2.75);
            e.write_i64(i64::MIN);
            e.write_string("héllo");
            let bytes = e.finish_stream();

            let mut d = CdrDecoder::new(&bytes, order);
            assert_eq!(d.read_octet().unwrap(), 7);
            assert!(d.read_bool().unwrap());
            assert_eq!(d.read_i16().unwrap(), -2);
            assert_eq!(d.read_u32().unwrap(), 0xDEAD_BEEF);
            assert_eq!(d.read_f64().unwrap(), -2.75);
            assert_eq!(d.read_i64().unwrap(), i64::MIN);
            assert_eq!(d.read_string().unwrap(), "héllo");
            assert_eq!(d.remaining(), 0);
        }
    }

    #[test]
    fn out_of_bounds_reported() {
        let mut d = CdrDecoder::new(&[1, 2], ByteOrder::Big);
        assert_eq!(
            d.read_u32(),
            Err(CdrError::OutOfBounds { need: 4, have: 2 })
        );
    }

    #[test]
    fn invalid_bool_rejected() {
        let mut d = CdrDecoder::new(&[2], ByteOrder::Big);
        assert_eq!(d.read_bool(), Err(CdrError::InvalidBool(2)));
    }

    #[test]
    fn string_missing_nul_rejected() {
        // length 2, bytes "ab" (no NUL)
        let mut d = CdrDecoder::new(&[0, 0, 0, 2, b'a', b'b'], ByteOrder::Big);
        assert_eq!(d.read_string(), Err(CdrError::InvalidString));
    }

    #[test]
    fn string_invalid_utf8_rejected() {
        let mut d = CdrDecoder::new(&[0, 0, 0, 2, 0xFF, 0], ByteOrder::Big);
        assert_eq!(d.read_string(), Err(CdrError::InvalidString));
    }

    #[test]
    fn length_overflow_rejected() {
        // ulong length = u32::MAX
        let mut d = CdrDecoder::new(&[0xFF; 8], ByteOrder::Big);
        assert!(matches!(d.read_string(), Err(CdrError::LengthOverflow(_))));
    }

    #[test]
    fn hostile_seq_length_does_not_allocate() {
        // count = 0x3FFFFFFF (within MAX) but buffer has 4 bytes: must fail
        // with OutOfBounds *before* allocating gigabytes.
        let mut bytes = 0x3FFF_FFFFu32.to_be_bytes().to_vec();
        bytes.extend_from_slice(&[0, 0, 0, 0]);
        let mut d = CdrDecoder::new(&bytes, ByteOrder::Big);
        assert!(matches!(
            d.read_octet_seq(),
            Err(CdrError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn octet_seq_roundtrip_meters_both_sides() {
        let m = CopyMeter::new_shared();
        let payload: Vec<u8> = (0..5000).map(|i| (i % 256) as u8).collect();
        let mut e = CdrEncoder::new(ByteOrder::Little).with_meter(Arc::clone(&m));
        e.write_octet_seq(&payload);
        let bytes = e.finish_stream();
        let mut d = CdrDecoder::new(&bytes, ByteOrder::Little).with_meter(Arc::clone(&m));
        let back = d.read_octet_seq().unwrap();
        assert_eq!(back, payload);
        assert_eq!(m.bytes(CopyLayer::Marshal), 5000);
        assert_eq!(m.bytes(CopyLayer::Demarshal), 5000);
    }

    #[test]
    fn borrowed_octet_seq_does_not_meter() {
        let m = CopyMeter::new_shared();
        let mut e = CdrEncoder::new(ByteOrder::Little);
        e.write_octet_seq(&[1, 2, 3]);
        let bytes = e.finish_stream();
        let mut d = CdrDecoder::new(&bytes, ByteOrder::Little).with_meter(Arc::clone(&m));
        assert_eq!(d.read_octet_seq_borrowed().unwrap(), &[1, 2, 3]);
        assert_eq!(m.bytes(CopyLayer::Demarshal), 0);
    }

    #[test]
    fn deposit_take_once_and_length_check() {
        let block = ZcBytes::zeroed(100);
        let mut d = CdrDecoder::new(&[], ByteOrder::Little).with_deposits(vec![block]);
        assert!(matches!(
            d.take_deposit(0, 99),
            Err(CdrError::DepositLengthMismatch { .. })
        ));
        let got = d.take_deposit(0, 100).unwrap();
        assert_eq!(got.len(), 100);
        // second take fails
        assert_eq!(d.take_deposit(0, 100), Err(CdrError::BadDepositIndex(0)));
        assert_eq!(d.take_deposit(5, 1), Err(CdrError::BadDepositIndex(5)));
    }

    #[test]
    fn encapsulation_roundtrip_cross_endian() {
        // Outer stream big-endian, inner encapsulation little-endian: the
        // flag octet must win.
        let mut inner_src = CdrEncoder::new(ByteOrder::Little);
        inner_src.write_octet(1); // LE flag
        inner_src.write_u32(0xCAFE_BABE);
        let inner_bytes = inner_src.finish_stream();

        let mut outer = CdrEncoder::new(ByteOrder::Big);
        outer.write_u32(inner_bytes.len() as u32);
        outer.write_raw(&inner_bytes);
        let bytes = outer.finish_stream();

        let mut d = CdrDecoder::new(&bytes, ByteOrder::Big);
        let v = d.read_encapsulation(|inner| inner.read_u32()).unwrap();
        assert_eq!(v, 0xCAFE_BABE);
    }

    #[test]
    fn alignment_skips_padding_on_read() {
        let mut e = CdrEncoder::new(ByteOrder::Big);
        e.write_octet(1);
        e.write_u32(42);
        let bytes = e.finish_stream();
        let mut d = CdrDecoder::new(&bytes, ByteOrder::Big);
        assert_eq!(d.read_octet().unwrap(), 1);
        assert_eq!(d.read_u32().unwrap(), 42);
    }
}
