//! The two sequence-of-octet implementations: standard and zero-copy.
//!
//! This module is the heart of the paper's §4.3/§4.4: the standard
//! `sequence<octet>` copies through the CDR buffer on both sides, while
//! `sequence<ZC_Octet>` — "whose representation and API is isomorphic to the
//! standard Octet while at the same time all corresponding methods are
//! modified to support zero-copy direct deposit" — passes page-aligned
//! blocks by reference and emits only a small descriptor into the stream.

use std::ops::Deref;

use zc_buffers::{CopyLayer, CopyMeter, ZcBytes};

use crate::decode::CdrDecoder;
use crate::encode::CdrEncoder;
use crate::typeid::TypeId;
use crate::types::CdrMarshal;
use crate::{CdrError, CdrResult, MAX_CDR_LENGTH};

/// The standard CORBA `sequence<octet>`: owned bytes, marshaled by copying
/// into/out of the request buffer (metered, so the cost shows up in every
/// experiment). Wire format: `ulong length` followed by the raw bytes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct OctetSeq(pub Vec<u8>);

impl OctetSeq {
    /// An empty sequence.
    pub fn new() -> OctetSeq {
        OctetSeq(Vec::new())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl From<Vec<u8>> for OctetSeq {
    fn from(v: Vec<u8>) -> Self {
        OctetSeq(v)
    }
}

impl Deref for OctetSeq {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl CdrMarshal for OctetSeq {
    fn type_id() -> TypeId {
        TypeId::OctetSeq
    }
    fn marshal(&self, enc: &mut CdrEncoder) -> CdrResult<()> {
        if self.0.len() as u64 > MAX_CDR_LENGTH {
            return Err(CdrError::LengthOverflow(self.0.len() as u64));
        }
        enc.write_octet_seq(&self.0);
        Ok(())
    }
    fn demarshal(dec: &mut CdrDecoder<'_>) -> CdrResult<Self> {
        Ok(OctetSeq(dec.read_octet_seq()?))
    }
}

/// The zero-copy octet stream, `sequence<ZC_Octet>`.
///
/// Internally a [`ZcBytes`]: a reference-counted view of a page-aligned
/// buffer. The API mirrors the paper's extensions to `SequenceTmpl<>`:
/// a *length* constructor that reserves an aligned data block, and direct
/// element access to the block.
///
/// ### Wire behaviour
/// * **ZC-negotiated stream** (`enc.zc_enabled()`): marshal writes
///   `ulong length` + `ulong deposit-index` and moves the block onto the
///   encoder's deposit list — zero payload bytes touched. Demarshal resolves
///   the index against blocks the transport deposited into page-aligned
///   memory — again zero payload bytes touched.
/// * **Plain stream**: marshal/demarshal degrade to exactly the
///   [`OctetSeq`] representation (one metered copy each side), keeping the
///   wire IIOP-compatible with peers that never heard of `ZC_Octet`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ZcOctetSeq {
    data: ZcBytes,
}

impl ZcOctetSeq {
    /// The paper's "length-method which is used for the initialization of a
    /// data block of a certain length": allocates a zeroed, page-aligned
    /// block ready for the application to fill in place.
    pub fn with_length(len: usize) -> ZcOctetSeq {
        ZcOctetSeq {
            data: ZcBytes::zeroed(len),
        }
    }

    /// Wrap an existing zero-copy block (no copy).
    pub fn from_zc(data: ZcBytes) -> ZcOctetSeq {
        ZcOctetSeq { data }
    }

    /// Build by copying `src` once into aligned storage — the application's
    /// single permitted touch, metered at [`CopyLayer::AppFill`].
    pub fn copy_from_slice(src: &[u8], meter: &CopyMeter) -> ZcOctetSeq {
        ZcOctetSeq {
            // zc-audit: allow(copy) — the application's single permitted fill, metered as AppFill
            data: ZcBytes::copy_from_slice(src, meter, CopyLayer::AppFill),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The underlying shared block.
    pub fn as_zc(&self) -> &ZcBytes {
        &self.data
    }

    /// Unwrap into the underlying shared block.
    pub fn into_zc(self) -> ZcBytes {
        self.data
    }

    /// Whether this block still starts on a page boundary (deposit
    /// eligibility).
    pub fn is_page_aligned(&self) -> bool {
        self.data.is_page_aligned()
    }

    /// Whether two sequences share storage — i.e. whether the path between
    /// them was zero-copy.
    pub fn ptr_eq(&self, other: &ZcOctetSeq) -> bool {
        self.data.ptr_eq(&other.data)
    }
}

impl Deref for ZcOctetSeq {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.data.as_slice()
    }
}

impl From<ZcBytes> for ZcOctetSeq {
    fn from(z: ZcBytes) -> Self {
        ZcOctetSeq::from_zc(z)
    }
}

impl CdrMarshal for ZcOctetSeq {
    fn type_id() -> TypeId {
        TypeId::ZcOctetSeq
    }

    fn marshal(&self, enc: &mut CdrEncoder) -> CdrResult<()> {
        if self.len() as u64 > MAX_CDR_LENGTH {
            return Err(CdrError::LengthOverflow(self.len() as u64));
        }
        if enc.zc_enabled() {
            // Direct deposit: descriptor only. "In the case of a direct
            // deposit the data is never actually marshaled but just passed
            // further on to the transport layer" (§4.4).
            enc.write_u32(self.len() as u32);
            // zc-audit: allow(cheap-clone) — ZcBytes clone is a refcount bump; the deposit carries a view, not bytes
            let idx = enc.push_deposit(self.data.clone());
            enc.write_u32(idx);
        } else {
            // Heterogeneous / ZC-incapable peer: inline, like OctetSeq.
            enc.write_octet_seq(&self.data);
        }
        Ok(())
    }

    fn demarshal(dec: &mut CdrDecoder<'_>) -> CdrResult<Self> {
        if dec.zc_enabled() {
            let len = dec.read_u32()? as usize;
            let idx = dec.read_u32()?;
            let block = dec.take_deposit(idx, len)?;
            Ok(ZcOctetSeq { data: block })
        } else {
            // Inline representation: one copy out of the receive buffer into
            // aligned storage (metered as demarshal by read_octet_seq).
            let bytes = dec.read_octet_seq()?;
            // zc-audit: allow(taint-alloc) — sized by bytes already decoded and held; read_octet_seq bounds them through checked_len
            let mut buf = zc_buffers::AlignedBuf::with_capacity(bytes.len());
            // zc-audit: allow(copy) — ZC-incapable peer fallback: inline bytes move into aligned storage, metered upstream as Demarshal
            buf.extend_from_slice(&bytes);
            Ok(ZcOctetSeq {
                data: ZcBytes::from_aligned(buf),
            })
        }
    }
}

/// Convenience: marshal any `CdrMarshal` value to a standalone byte vector
/// (native order, no deposits). Handy for tests and golden files.
pub fn to_bytes<T: CdrMarshal>(value: &T) -> CdrResult<Vec<u8>> {
    let mut enc = CdrEncoder::native();
    value.marshal(&mut enc)?;
    Ok(enc.finish_stream())
}

/// Convenience: demarshal a value from bytes produced by [`to_bytes`].
pub fn from_bytes<T: CdrMarshal>(bytes: &[u8]) -> CdrResult<T> {
    let mut dec = CdrDecoder::new(bytes, crate::ByteOrder::native());
    T::demarshal(&mut dec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ByteOrder;
    use std::sync::Arc;

    #[test]
    fn octet_seq_wire_format() {
        let s = OctetSeq(vec![1, 2, 3]);
        let mut e = CdrEncoder::new(ByteOrder::Big);
        s.marshal(&mut e).unwrap();
        assert_eq!(e.as_slice(), &[0, 0, 0, 3, 1, 2, 3]);
    }

    #[test]
    fn zc_fallback_wire_format_matches_octet_seq() {
        // On a non-ZC stream the two types must be wire-identical — that is
        // the interoperability guarantee.
        let payload = vec![7u8; 100];
        let std_bytes = {
            let mut e = CdrEncoder::new(ByteOrder::Little);
            OctetSeq(payload.clone()).marshal(&mut e).unwrap();
            e.finish_stream()
        };
        let zc_bytes = {
            let m = CopyMeter::new_shared();
            let mut e = CdrEncoder::new(ByteOrder::Little);
            ZcOctetSeq::copy_from_slice(&payload, &m)
                .marshal(&mut e)
                .unwrap();
            e.finish_stream()
        };
        assert_eq!(std_bytes, zc_bytes);
        // And each demarshals as the other.
        let mut d = CdrDecoder::new(&std_bytes, ByteOrder::Little);
        let z = ZcOctetSeq::demarshal(&mut d).unwrap();
        assert_eq!(&z[..], &payload[..]);
        let mut d2 = CdrDecoder::new(&zc_bytes, ByteOrder::Little);
        let s = OctetSeq::demarshal(&mut d2).unwrap();
        assert_eq!(s.0, payload);
    }

    #[test]
    fn zc_deposit_path_is_zero_copy() {
        let m = CopyMeter::new_shared();
        let seq = ZcOctetSeq::with_length(1 << 20);
        let mut e = CdrEncoder::new(ByteOrder::Little)
            .with_meter(Arc::clone(&m))
            .with_zc(true);
        seq.marshal(&mut e).unwrap();
        let (stream, deposits) = e.finish();
        assert_eq!(
            stream.len(),
            8,
            "descriptor is 8 bytes regardless of payload"
        );
        assert_eq!(deposits.len(), 1);

        let mut d = CdrDecoder::new(&stream, ByteOrder::Little)
            .with_meter(Arc::clone(&m))
            .with_deposits(deposits);
        let back = ZcOctetSeq::demarshal(&mut d).unwrap();
        assert!(back.ptr_eq(&seq), "storage shared end to end");
        assert_eq!(
            m.snapshot().overhead_bytes(),
            0,
            "no payload byte copied anywhere"
        );
    }

    #[test]
    fn zc_deposit_length_mismatch_detected() {
        let seq = ZcOctetSeq::with_length(100);
        let mut e = CdrEncoder::new(ByteOrder::Little).with_zc(true);
        seq.marshal(&mut e).unwrap();
        let (stream, _deposits) = e.finish();
        // Supply a *different* block than announced.
        let wrong = vec![ZcBytes::zeroed(50)];
        let mut d = CdrDecoder::new(&stream, ByteOrder::Little).with_deposits(wrong);
        assert!(matches!(
            ZcOctetSeq::demarshal(&mut d),
            Err(CdrError::DepositLengthMismatch { .. })
        ));
    }

    #[test]
    fn zc_missing_deposit_detected() {
        let seq = ZcOctetSeq::with_length(10);
        let mut e = CdrEncoder::new(ByteOrder::Little).with_zc(true);
        seq.marshal(&mut e).unwrap();
        let (stream, _) = e.finish();
        let mut d = CdrDecoder::new(&stream, ByteOrder::Little).with_deposits(vec![]);
        assert!(matches!(
            ZcOctetSeq::demarshal(&mut d),
            Err(CdrError::BadDepositIndex(0))
        ));
    }

    #[test]
    fn multiple_deposits_resolve_by_index() {
        let a = ZcOctetSeq::with_length(10);
        let b = ZcOctetSeq::with_length(20);
        let mut e = CdrEncoder::new(ByteOrder::Little).with_zc(true);
        a.marshal(&mut e).unwrap();
        b.marshal(&mut e).unwrap();
        let (stream, deposits) = e.finish();
        let mut d = CdrDecoder::new(&stream, ByteOrder::Little).with_deposits(deposits);
        let a2 = ZcOctetSeq::demarshal(&mut d).unwrap();
        let b2 = ZcOctetSeq::demarshal(&mut d).unwrap();
        assert_eq!(a2.len(), 10);
        assert_eq!(b2.len(), 20);
        assert!(a2.ptr_eq(&a));
        assert!(b2.ptr_eq(&b));
    }

    #[test]
    fn with_length_is_aligned_and_zeroed() {
        let s = ZcOctetSeq::with_length(12345);
        assert_eq!(s.len(), 12345);
        assert!(s.is_page_aligned());
        assert!(s.iter().all(|&b| b == 0));
    }

    #[test]
    fn to_from_bytes_helpers() {
        let v = OctetSeq(vec![1, 2, 3, 4, 5]);
        let bytes = to_bytes(&v).unwrap();
        let back: OctetSeq = from_bytes(&bytes).unwrap();
        assert_eq!(back, v);
    }
}
