//! Type identifiers (MICO's "TID") for the CORBA types zcorba handles.
//!
//! MICO "allocates a unique key to each of them. This key is represented as
//! an integer value called Type Identifier (TID)" (§4.1). The zero-copy
//! extension adds `MICO_TID_ZC_OCTET`; we mirror that with
//! [`TypeId::ZcOctetSeq`]. The marshaling machinery is statically dispatched
//! per TID (as in MICO, where concrete `TCSeqOctet`/`TCSeqZCOctet` classes
//! are instantiated per type), so the TID also appears on the wire in
//! self-describing encodings such as `Any`-lite used by the dynamic request
//! path and in deposit descriptors.

use crate::wire::ZC_TAG;
use crate::CdrError;

/// Integer type identifiers. Values below 0x100 follow the ordering of the
/// CORBA `TCKind` enumeration; the zero-copy octet sequence uses the
/// distinctive value `0x5A43` (ASCII "ZC"), well clear of standard kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u32)]
pub enum TypeId {
    /// Absence of a value.
    Null = 0,
    /// `void` (operation with no result).
    Void = 1,
    /// `short` — 16-bit signed.
    Short = 2,
    /// `long` — 32-bit signed.
    Long = 3,
    /// `unsigned short`.
    UShort = 4,
    /// `unsigned long`.
    ULong = 5,
    /// `float` — IEEE single.
    Float = 6,
    /// `double` — IEEE double.
    Double = 7,
    /// `boolean`.
    Boolean = 8,
    /// `char` (we restrict to ISO-8859-1 code points on the wire).
    Char = 9,
    /// `octet` — the uninterpreted 8-bit byte that "undergoes no marshaling".
    Octet = 10,
    /// `struct`.
    Struct = 11,
    /// `enum`.
    Enum = 17,
    /// `string`.
    String = 18,
    /// generic `sequence<T>`.
    Sequence = 19,
    /// `long long` — 64-bit signed.
    LongLong = 23,
    /// `unsigned long long`.
    ULongLong = 24,
    /// The standard `sequence<octet>` fast-path TID.
    OctetSeq = 0x100,
    /// The zero-copy octet stream: `sequence<ZC_Octet>` (MICO_TID_ZC_OCTET).
    /// The discriminant is the shared [`ZC_TAG`] wire constant.
    ZcOctetSeq = ZC_TAG,
}

impl TypeId {
    /// Decode a wire value.
    pub fn from_u32(v: u32) -> Result<TypeId, CdrError> {
        Ok(match v {
            0 => TypeId::Null,
            1 => TypeId::Void,
            2 => TypeId::Short,
            3 => TypeId::Long,
            4 => TypeId::UShort,
            5 => TypeId::ULong,
            6 => TypeId::Float,
            7 => TypeId::Double,
            8 => TypeId::Boolean,
            9 => TypeId::Char,
            10 => TypeId::Octet,
            11 => TypeId::Struct,
            17 => TypeId::Enum,
            18 => TypeId::String,
            19 => TypeId::Sequence,
            23 => TypeId::LongLong,
            24 => TypeId::ULongLong,
            0x100 => TypeId::OctetSeq,
            ZC_TAG => TypeId::ZcOctetSeq,
            other => return Err(CdrError::BadTypeId(other)),
        })
    }

    /// The wire value.
    pub fn as_u32(self) -> u32 {
        self as u32
    }

    /// CDR alignment requirement of the *first primitive* of this type.
    pub fn alignment(self) -> usize {
        match self {
            TypeId::Null | TypeId::Void => 1,
            TypeId::Boolean | TypeId::Char | TypeId::Octet => 1,
            TypeId::Short | TypeId::UShort => 2,
            TypeId::Long
            | TypeId::ULong
            | TypeId::Float
            | TypeId::Enum
            | TypeId::String
            | TypeId::Sequence
            | TypeId::OctetSeq
            | TypeId::ZcOctetSeq
            | TypeId::Struct => 4,
            TypeId::Double | TypeId::LongLong | TypeId::ULongLong => 8,
        }
    }

    /// Whether values of this type are identical on every architecture we
    /// support — the precondition for skipping marshaling entirely (§2.1
    /// "certain types, especially octets ... do not have to be marshaled").
    pub fn marshal_free(self) -> bool {
        matches!(
            self,
            TypeId::Octet | TypeId::OctetSeq | TypeId::ZcOctetSeq | TypeId::Boolean | TypeId::Char
        )
    }

    /// Human-readable IDL-ish name.
    pub fn name(self) -> &'static str {
        match self {
            TypeId::Null => "null",
            TypeId::Void => "void",
            TypeId::Short => "short",
            TypeId::Long => "long",
            TypeId::UShort => "unsigned short",
            TypeId::ULong => "unsigned long",
            TypeId::Float => "float",
            TypeId::Double => "double",
            TypeId::Boolean => "boolean",
            TypeId::Char => "char",
            TypeId::Octet => "octet",
            TypeId::Struct => "struct",
            TypeId::Enum => "enum",
            TypeId::String => "string",
            TypeId::Sequence => "sequence",
            TypeId::LongLong => "long long",
            TypeId::ULongLong => "unsigned long long",
            TypeId::OctetSeq => "sequence<octet>",
            TypeId::ZcOctetSeq => "sequence<ZC_Octet>",
        }
    }
}

impl std::fmt::Display for TypeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [TypeId; 19] = [
        TypeId::Null,
        TypeId::Void,
        TypeId::Short,
        TypeId::Long,
        TypeId::UShort,
        TypeId::ULong,
        TypeId::Float,
        TypeId::Double,
        TypeId::Boolean,
        TypeId::Char,
        TypeId::Octet,
        TypeId::Struct,
        TypeId::Enum,
        TypeId::String,
        TypeId::Sequence,
        TypeId::LongLong,
        TypeId::ULongLong,
        TypeId::OctetSeq,
        TypeId::ZcOctetSeq,
    ];

    #[test]
    fn wire_roundtrip_all() {
        for t in ALL {
            assert_eq!(TypeId::from_u32(t.as_u32()).unwrap(), t);
        }
    }

    #[test]
    fn unknown_tid_rejected() {
        assert_eq!(TypeId::from_u32(9999), Err(CdrError::BadTypeId(9999)));
    }

    #[test]
    fn zc_tid_is_ascii_zc() {
        assert_eq!(TypeId::ZcOctetSeq.as_u32(), 0x5A43);
        assert_eq!(&0x5A43u16.to_be_bytes(), b"ZC");
    }

    #[test]
    fn alignments_match_cdr_rules() {
        assert_eq!(TypeId::Octet.alignment(), 1);
        assert_eq!(TypeId::Short.alignment(), 2);
        assert_eq!(TypeId::ULong.alignment(), 4);
        assert_eq!(TypeId::Double.alignment(), 8);
        assert_eq!(TypeId::LongLong.alignment(), 8);
        assert_eq!(
            TypeId::String.alignment(),
            4,
            "string starts with its ulong length"
        );
    }

    #[test]
    fn octet_types_are_marshal_free() {
        assert!(TypeId::Octet.marshal_free());
        assert!(TypeId::OctetSeq.marshal_free());
        assert!(TypeId::ZcOctetSeq.marshal_free());
        assert!(!TypeId::Long.marshal_free());
        assert!(!TypeId::Double.marshal_free());
        assert!(!TypeId::String.marshal_free());
    }
}
