//! The [`CdrMarshal`] trait and its implementations for primitive and
//! composite types. This is the Rust analogue of MICO's per-type marshaling
//! classes (`TCLong`, `TCString`, `TCSeqOctet`, …): a statically dispatched
//! marshal/demarshal pair selected by the parameter's type.

use crate::decode::CdrDecoder;
use crate::encode::CdrEncoder;
use crate::typeid::TypeId;
use crate::{CdrError, CdrResult, MAX_CDR_LENGTH};

/// A value that can be marshaled to and demarshaled from CDR.
///
/// Generated stub/skeleton code (see the `zc-idl` crate) calls these methods
/// for every operation parameter; the ORB calls them through
/// request/reply builders.
pub trait CdrMarshal: Sized {
    /// The type identifier used for dispatch and diagnostics.
    fn type_id() -> TypeId;

    /// Encode `self` onto the stream.
    fn marshal(&self, enc: &mut CdrEncoder) -> CdrResult<()>;

    /// Decode a value from the stream.
    fn demarshal(dec: &mut CdrDecoder<'_>) -> CdrResult<Self>;
}

macro_rules! prim_impl {
    ($t:ty, $tid:expr, $write:ident, $read:ident) => {
        impl CdrMarshal for $t {
            fn type_id() -> TypeId {
                $tid
            }
            fn marshal(&self, enc: &mut CdrEncoder) -> CdrResult<()> {
                enc.$write(*self);
                Ok(())
            }
            fn demarshal(dec: &mut CdrDecoder<'_>) -> CdrResult<Self> {
                dec.$read()
            }
        }
    };
}

prim_impl!(u8, TypeId::Octet, write_octet, read_octet);
prim_impl!(bool, TypeId::Boolean, write_bool, read_bool);
prim_impl!(i16, TypeId::Short, write_i16, read_i16);
prim_impl!(u16, TypeId::UShort, write_u16, read_u16);
prim_impl!(i32, TypeId::Long, write_i32, read_i32);
prim_impl!(u32, TypeId::ULong, write_u32, read_u32);
prim_impl!(i64, TypeId::LongLong, write_i64, read_i64);
prim_impl!(u64, TypeId::ULongLong, write_u64, read_u64);
prim_impl!(f32, TypeId::Float, write_f32, read_f32);
prim_impl!(f64, TypeId::Double, write_f64, read_f64);

impl CdrMarshal for String {
    fn type_id() -> TypeId {
        TypeId::String
    }
    fn marshal(&self, enc: &mut CdrEncoder) -> CdrResult<()> {
        enc.write_string(self);
        Ok(())
    }
    fn demarshal(dec: &mut CdrDecoder<'_>) -> CdrResult<Self> {
        dec.read_string()
    }
}

/// `void` — operations without a result marshal the unit type.
impl CdrMarshal for () {
    fn type_id() -> TypeId {
        TypeId::Void
    }
    fn marshal(&self, _enc: &mut CdrEncoder) -> CdrResult<()> {
        Ok(())
    }
    fn demarshal(_dec: &mut CdrDecoder<'_>) -> CdrResult<Self> {
        Ok(())
    }
}

/// Generic `sequence<T>`: ulong count followed by the elements, each
/// marshaled through its own implementation. This is the "very general
/// unoptimized loop that is able to handle all different data types
/// correctly" the paper contrasts with specialized bulk routines — which is
/// why `sequence<octet>` has its own fast types ([`crate::OctetSeq`] /
/// [`crate::ZcOctetSeq`]) rather than going through `Vec<u8>` here.
impl<T: CdrMarshal> CdrMarshal for Vec<T> {
    fn type_id() -> TypeId {
        TypeId::Sequence
    }
    fn marshal(&self, enc: &mut CdrEncoder) -> CdrResult<()> {
        if self.len() as u64 > MAX_CDR_LENGTH {
            return Err(CdrError::LengthOverflow(self.len() as u64));
        }
        enc.write_u32(self.len() as u32);
        for item in self {
            item.marshal(enc)?;
        }
        Ok(())
    }
    fn demarshal(dec: &mut CdrDecoder<'_>) -> CdrResult<Self> {
        let count = dec.read_u32()?;
        if count as u64 > MAX_CDR_LENGTH {
            return Err(CdrError::LengthOverflow(count as u64));
        }
        // Guard allocation: each element consumes at least one byte of
        // stream, so `count` can never legitimately exceed what remains.
        if count as usize > dec.remaining().max(1) * 8 {
            return Err(CdrError::OutOfBounds {
                need: count as usize,
                have: dec.remaining(),
            });
        }
        let mut out = Vec::with_capacity(zc_buffers::bounded_capacity(count as u64, 4096));
        for _ in 0..count {
            out.push(T::demarshal(dec)?);
        }
        Ok(out)
    }
}

/// Fixed-size IDL arrays (`T name[N]`): elements back to back with **no**
/// length prefix — the length is part of the type, per CDR.
impl<T: CdrMarshal, const N: usize> CdrMarshal for [T; N] {
    fn type_id() -> TypeId {
        TypeId::Sequence
    }
    fn marshal(&self, enc: &mut CdrEncoder) -> CdrResult<()> {
        for item in self {
            item.marshal(enc)?;
        }
        Ok(())
    }
    fn demarshal(dec: &mut CdrDecoder<'_>) -> CdrResult<Self> {
        let mut out = Vec::with_capacity(N);
        for _ in 0..N {
            out.push(T::demarshal(dec)?);
        }
        out.try_into()
            .map_err(|_| CdrError::LengthOverflow(N as u64))
    }
}

/// Helper for code generators: marshal an enum discriminant.
pub fn marshal_enum(enc: &mut CdrEncoder, discriminant: u32) -> CdrResult<()> {
    enc.write_u32(discriminant);
    Ok(())
}

/// Helper for code generators: demarshal an enum discriminant, checking it
/// against the number of declared enumerators.
pub fn demarshal_enum(dec: &mut CdrDecoder<'_>, num_variants: u32) -> CdrResult<u32> {
    let v = dec.read_u32()?;
    if v >= num_variants {
        return Err(CdrError::BadEnumValue(v));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ByteOrder;

    fn roundtrip<T: CdrMarshal + PartialEq + std::fmt::Debug>(v: &T, order: ByteOrder) -> T {
        let mut e = CdrEncoder::new(order);
        v.marshal(&mut e).unwrap();
        let bytes = e.finish_stream();
        let mut d = CdrDecoder::new(&bytes, order);
        let back = T::demarshal(&mut d).unwrap();
        assert_eq!(d.remaining(), 0, "stream fully consumed");
        back
    }

    #[test]
    fn primitives_roundtrip() {
        for order in [ByteOrder::Big, ByteOrder::Little] {
            assert_eq!(roundtrip(&0xABu8, order), 0xAB);
            assert!(roundtrip(&true, order));
            assert_eq!(roundtrip(&-123i16, order), -123);
            assert_eq!(roundtrip(&u16::MAX, order), u16::MAX);
            assert_eq!(roundtrip(&i32::MIN, order), i32::MIN);
            assert_eq!(roundtrip(&0xDEAD_BEEFu32, order), 0xDEAD_BEEF);
            assert_eq!(roundtrip(&i64::MAX, order), i64::MAX);
            assert_eq!(roundtrip(&u64::MAX, order), u64::MAX);
            assert_eq!(roundtrip(&1.5f32, order), 1.5);
            assert_eq!(roundtrip(&-0.1f64, order), -0.1);
            assert_eq!(roundtrip(&"unicode ✓".to_string(), order), "unicode ✓");
            roundtrip(&(), order);
        }
    }

    #[test]
    fn vec_of_longs_roundtrip() {
        let v: Vec<i32> = (-50..50).collect();
        assert_eq!(roundtrip(&v, ByteOrder::Big), v);
        assert_eq!(roundtrip(&v, ByteOrder::Little), v);
    }

    #[test]
    fn vec_of_strings_roundtrip() {
        let v = vec!["a".to_string(), "".to_string(), "longer string".to_string()];
        assert_eq!(roundtrip(&v, ByteOrder::Little), v);
    }

    #[test]
    fn nested_vec_roundtrip() {
        let v: Vec<Vec<u16>> = vec![vec![1, 2], vec![], vec![65535]];
        assert_eq!(roundtrip(&v, ByteOrder::Big), v);
    }

    /// A hand-written struct impl of the exact shape zc-idlc generates.
    #[derive(Debug, PartialEq, Clone)]
    struct FrameHeader {
        stream_id: u32,
        pts: i64,
        keyframe: bool,
        label: String,
    }

    impl CdrMarshal for FrameHeader {
        fn type_id() -> TypeId {
            TypeId::Struct
        }
        fn marshal(&self, enc: &mut CdrEncoder) -> CdrResult<()> {
            self.stream_id.marshal(enc)?;
            self.pts.marshal(enc)?;
            self.keyframe.marshal(enc)?;
            self.label.marshal(enc)?;
            Ok(())
        }
        fn demarshal(dec: &mut CdrDecoder<'_>) -> CdrResult<Self> {
            Ok(FrameHeader {
                stream_id: u32::demarshal(dec)?,
                pts: i64::demarshal(dec)?,
                keyframe: bool::demarshal(dec)?,
                label: String::demarshal(dec)?,
            })
        }
    }

    #[test]
    fn struct_roundtrip_with_alignment_holes() {
        let h = FrameHeader {
            stream_id: 3,
            pts: -1_000_000_007,
            keyframe: true,
            label: "GOP-0".into(),
        };
        assert_eq!(roundtrip(&h, ByteOrder::Big), h);
        assert_eq!(roundtrip(&h, ByteOrder::Little), h);
        let v = vec![h.clone(), h];
        assert_eq!(roundtrip(&v, ByteOrder::Little), v);
    }

    #[test]
    fn fixed_arrays_have_no_length_prefix() {
        let arr: [u16; 3] = [1, 2, 3];
        let mut e = CdrEncoder::new(ByteOrder::Big);
        arr.marshal(&mut e).unwrap();
        assert_eq!(e.as_slice(), &[0, 1, 0, 2, 0, 3], "6 bytes, no count");
        let bytes = e.finish_stream();
        let mut d = CdrDecoder::new(&bytes, ByteOrder::Big);
        assert_eq!(<[u16; 3]>::demarshal(&mut d).unwrap(), arr);
    }

    #[test]
    fn arrays_of_structs_roundtrip() {
        let arr: [FrameHeader; 2] = [
            FrameHeader {
                stream_id: 1,
                pts: 2,
                keyframe: false,
                label: "a".into(),
            },
            FrameHeader {
                stream_id: 3,
                pts: 4,
                keyframe: true,
                label: "b".into(),
            },
        ];
        assert_eq!(roundtrip(&arr, ByteOrder::Little), arr);
    }

    #[test]
    fn truncated_array_errors() {
        let mut d = CdrDecoder::new(&[0, 1], ByteOrder::Big);
        assert!(<[u16; 3]>::demarshal(&mut d).is_err());
    }

    #[test]
    fn enum_helpers() {
        let mut e = CdrEncoder::new(ByteOrder::Little);
        marshal_enum(&mut e, 2).unwrap();
        let bytes = e.finish_stream();
        let mut d = CdrDecoder::new(&bytes, ByteOrder::Little);
        assert_eq!(demarshal_enum(&mut d, 3).unwrap(), 2);
        let mut d2 = CdrDecoder::new(&bytes, ByteOrder::Little);
        assert_eq!(demarshal_enum(&mut d2, 2), Err(CdrError::BadEnumValue(2)));
    }

    #[test]
    fn hostile_vec_count_rejected_without_allocation() {
        // count = 2^29 elements but almost no bytes follow.
        let mut e = CdrEncoder::new(ByteOrder::Little);
        e.write_u32(1 << 29);
        let bytes = e.finish_stream();
        let mut d = CdrDecoder::new(&bytes, ByteOrder::Little);
        assert!(Vec::<i32>::demarshal(&mut d).is_err());
    }
}
