//! The CDR encoder.

use std::sync::Arc;

use zc_buffers::{CopyLayer, CopyMeter, ZcBytes};

use crate::endian::{self, ByteOrder};

/// Encodes values into a CDR stream.
///
/// Alignment is computed relative to the start of the encoder's buffer,
/// which in GIOP corresponds to the first byte after the 12-byte message
/// header (the header itself is laid out so that the body starts 8-aligned).
///
/// The encoder carries the two pieces of per-connection context the paper's
/// optimization needs:
///
/// * an optional [`CopyMeter`] so that *bulk* payload copies performed by
///   standard `sequence<octet>` marshaling are accounted at
///   [`CopyLayer::Marshal`];
/// * a `zc_enabled` flag plus an out-of-band *deposit list*: when the
///   connection negotiated direct deposit, [`crate::ZcOctetSeq`] marshaling
///   pushes its payload here instead of copying it into the stream.
pub struct CdrEncoder {
    buf: Vec<u8>,
    order: ByteOrder,
    meter: Option<Arc<CopyMeter>>,
    zc_enabled: bool,
    deposits: Vec<ZcBytes>,
}

impl CdrEncoder {
    /// New encoder writing in `order`.
    pub fn new(order: ByteOrder) -> CdrEncoder {
        CdrEncoder {
            buf: Vec::new(),
            order,
            meter: None,
            zc_enabled: false,
            deposits: Vec::new(),
        }
    }

    /// New encoder in native order (the common homogeneous-cluster case).
    pub fn native() -> CdrEncoder {
        CdrEncoder::new(ByteOrder::native())
    }

    /// Attach a copy meter; bulk octet writes will be accounted on it.
    pub fn with_meter(mut self, meter: Arc<CopyMeter>) -> CdrEncoder {
        self.meter = Some(meter);
        self
    }

    /// Enable the direct-deposit path for zero-copy sequence types.
    pub fn with_zc(mut self, enabled: bool) -> CdrEncoder {
        self.zc_enabled = enabled;
        self
    }

    /// The stream's byte order.
    pub fn order(&self) -> ByteOrder {
        self.order
    }

    /// Whether `ZcOctetSeq` values will take the deposit path.
    pub fn zc_enabled(&self) -> bool {
        self.zc_enabled
    }

    /// Bytes encoded so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been encoded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Number of deposited out-of-band blocks so far.
    pub fn deposit_count(&self) -> usize {
        self.deposits.len()
    }

    /// Insert padding so the next write lands on an `n`-byte boundary.
    pub fn align(&mut self, n: usize) {
        debug_assert!(n.is_power_of_two() && n <= 8);
        let misalign = self.buf.len() % n;
        if misalign != 0 {
            // CDR padding octets have unspecified value; we use zero.
            self.buf.resize(self.buf.len() + (n - misalign), 0);
        }
    }

    /// Append raw bytes with neither alignment nor metering. Protocol
    /// headers and pre-encoded encapsulations use this.
    pub fn write_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// `octet`
    pub fn write_octet(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// `boolean` (encoded as one octet, 0 or 1)
    pub fn write_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// `char` (single-byte code point on the wire)
    pub fn write_char(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// `short`
    pub fn write_i16(&mut self, v: i16) {
        self.align(2);
        self.buf
            .extend_from_slice(&endian::write_i16(self.order, v));
    }

    /// `unsigned short`
    pub fn write_u16(&mut self, v: u16) {
        self.align(2);
        self.buf
            .extend_from_slice(&endian::write_u16(self.order, v));
    }

    /// `long`
    pub fn write_i32(&mut self, v: i32) {
        self.align(4);
        self.buf
            .extend_from_slice(&endian::write_i32(self.order, v));
    }

    /// `unsigned long`
    pub fn write_u32(&mut self, v: u32) {
        self.align(4);
        self.buf
            .extend_from_slice(&endian::write_u32(self.order, v));
    }

    /// `long long`
    pub fn write_i64(&mut self, v: i64) {
        self.align(8);
        self.buf
            .extend_from_slice(&endian::write_i64(self.order, v));
    }

    /// `unsigned long long`
    pub fn write_u64(&mut self, v: u64) {
        self.align(8);
        self.buf
            .extend_from_slice(&endian::write_u64(self.order, v));
    }

    /// `float`
    pub fn write_f32(&mut self, v: f32) {
        self.align(4);
        self.buf
            .extend_from_slice(&endian::write_f32(self.order, v));
    }

    /// `double`
    pub fn write_f64(&mut self, v: f64) {
        self.align(8);
        self.buf
            .extend_from_slice(&endian::write_f64(self.order, v));
    }

    /// `string`: ulong length (including the terminating NUL), the UTF-8
    /// bytes, then NUL.
    pub fn write_string(&mut self, s: &str) {
        self.write_u32((s.len() + 1) as u32);
        self.buf.extend_from_slice(s.as_bytes());
        self.buf.push(0);
    }

    /// Bulk octet write: ulong count followed by the raw bytes. This is the
    /// copying path of `sequence<octet>` — the copy is metered at
    /// [`CopyLayer::Marshal`] because it is precisely the overhead the
    /// paper's `TCSeqOctet::marshal` loop incurs.
    pub fn write_octet_seq(&mut self, bytes: &[u8]) {
        self.write_u32(bytes.len() as u32);
        let start = self.buf.len();
        // zc-audit: allow(taint-arith) — inline sequence length is checked against MAX_CDR_LENGTH at every marshal call site before reaching here
        self.buf.resize(start + bytes.len(), 0);
        match &self.meter {
            // zc-audit: allow(taint-panic) — slice produced by the resize above; length bounded by MAX_CDR_LENGTH at marshal call sites
            Some(m) => m.copy(CopyLayer::Marshal, &mut self.buf[start..], bytes),
            // zc-audit: allow(taint-panic) — slice produced by the resize above; length bounded by MAX_CDR_LENGTH at marshal call sites
            None => self.buf[start..].copy_from_slice(bytes),
        }
    }

    /// Register an out-of-band deposit block; returns its descriptor index.
    /// Only legal on a ZC-negotiated stream.
    ///
    /// No payload bytes are touched: the `ZcBytes` is moved (reference
    /// counted) onto the deposit list for the connection layer to hand to
    /// the data channel.
    pub fn push_deposit(&mut self, block: ZcBytes) -> u32 {
        debug_assert!(self.zc_enabled, "deposit on a non-ZC stream");
        let idx = self.deposits.len() as u32;
        self.deposits.push(block);
        idx
    }

    /// Encode a nested *encapsulation*: a length-prefixed, independently
    /// aligned CDR stream starting with its own endianness octet. Used for
    /// IOR profile bodies and service-context data.
    pub fn write_encapsulation(&mut self, f: impl FnOnce(&mut CdrEncoder)) {
        let mut inner = CdrEncoder::new(self.order);
        inner.write_octet(self.order.flag() as u8);
        f(&mut inner);
        assert!(
            inner.deposits.is_empty(),
            "deposits are not allowed inside encapsulations"
        );
        self.write_u32(inner.buf.len() as u32);
        self.buf.extend_from_slice(&inner.buf);
    }

    /// Finish encoding: the CDR stream plus the deposit list.
    pub fn finish(self) -> (Vec<u8>, Vec<ZcBytes>) {
        (self.buf, self.deposits)
    }

    /// Finish encoding a stream that cannot carry deposits.
    ///
    /// # Panics
    /// If deposits were pushed.
    pub fn finish_stream(self) -> Vec<u8> {
        assert!(self.deposits.is_empty(), "unexpected deposits");
        self.buf
    }

    /// Peek at the encoded bytes (primarily for tests).
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_inserts_padding() {
        let mut e = CdrEncoder::new(ByteOrder::Big);
        e.write_octet(1);
        e.write_u32(2); // needs 3 pad bytes
        assert_eq!(e.as_slice(), &[1, 0, 0, 0, 0, 0, 0, 2]);
    }

    #[test]
    fn no_padding_when_aligned() {
        let mut e = CdrEncoder::new(ByteOrder::Big);
        e.write_u32(7);
        e.write_u32(8);
        assert_eq!(e.len(), 8);
    }

    #[test]
    fn eight_byte_alignment() {
        let mut e = CdrEncoder::new(ByteOrder::Big);
        e.write_u32(1);
        e.write_f64(2.0); // pads to offset 8
        assert_eq!(e.len(), 16);
        assert_eq!(&e.as_slice()[8..], &2.0f64.to_be_bytes());
    }

    #[test]
    fn string_layout() {
        let mut e = CdrEncoder::new(ByteOrder::Big);
        e.write_string("hi");
        assert_eq!(e.as_slice(), &[0, 0, 0, 3, b'h', b'i', 0]);
    }

    #[test]
    fn octet_seq_meters_marshal_copy() {
        let m = CopyMeter::new_shared();
        let mut e = CdrEncoder::new(ByteOrder::Little).with_meter(Arc::clone(&m));
        e.write_octet_seq(&[9; 1000]);
        assert_eq!(m.bytes(CopyLayer::Marshal), 1000);
        assert_eq!(e.len(), 4 + 1000);
    }

    #[test]
    fn deposit_does_not_touch_payload_or_meter() {
        let m = CopyMeter::new_shared();
        let mut e = CdrEncoder::new(ByteOrder::Little)
            .with_meter(Arc::clone(&m))
            .with_zc(true);
        let block = ZcBytes::zeroed(1 << 20);
        let idx = e.push_deposit(block.clone());
        assert_eq!(idx, 0);
        assert_eq!(e.deposit_count(), 1);
        assert_eq!(m.snapshot().total_bytes(), 0, "no copy performed");
        let (_, deposits) = e.finish();
        assert!(deposits[0].ptr_eq(&block), "same storage, zero copies");
    }

    #[test]
    fn encapsulation_has_own_alignment_and_flag() {
        let mut e = CdrEncoder::new(ByteOrder::Little);
        e.write_octet(0xAA); // misalign the outer stream
        e.write_encapsulation(|inner| {
            inner.write_u32(0x11223344);
        });
        let b = e.finish_stream();
        // outer: octet, pad to 4, ulong length, then encapsulated bytes
        assert_eq!(b[0], 0xAA);
        let len = u32::from_le_bytes(b[4..8].try_into().unwrap()) as usize;
        let encap = &b[8..8 + len];
        assert_eq!(encap[0], 1, "little-endian flag octet");
        // inner alignment is relative to the encapsulation start: flag octet
        // then 3 pad bytes then the ulong.
        assert_eq!(&encap[4..8], &0x11223344u32.to_le_bytes());
    }

    #[test]
    #[should_panic(expected = "unexpected deposits")]
    fn finish_stream_rejects_deposits() {
        let mut e = CdrEncoder::native().with_zc(true);
        e.push_deposit(ZcBytes::zeroed(8));
        let _ = e.finish_stream();
    }
}
