//! Byte order handling for CDR streams.

/// Byte order of a CDR stream, announced in the GIOP flags octet.
///
/// CDR uses "receiver makes it right": the sender writes in its native
/// order and flags it; the receiver byte-swaps only when orders differ.
/// On a homogeneous subcluster (the paper's prerequisite for the best
/// zero-copy operation) no swapping ever happens.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ByteOrder {
    /// Most significant byte first ("network order" in IP parlance).
    Big,
    /// Least significant byte first (x86 native).
    Little,
}

impl ByteOrder {
    /// The byte order of the machine we are running on.
    pub const fn native() -> ByteOrder {
        if cfg!(target_endian = "big") {
            ByteOrder::Big
        } else {
            ByteOrder::Little
        }
    }

    /// Decode from the GIOP flags bit (bit 0: 1 = little-endian).
    pub fn from_flag(little: bool) -> ByteOrder {
        if little {
            ByteOrder::Little
        } else {
            ByteOrder::Big
        }
    }

    /// Encode as the GIOP flags bit.
    pub fn flag(self) -> bool {
        matches!(self, ByteOrder::Little)
    }

    /// The opposite order (used by interop tests to emulate a foreign host).
    pub fn swapped(self) -> ByteOrder {
        match self {
            ByteOrder::Big => ByteOrder::Little,
            ByteOrder::Little => ByteOrder::Big,
        }
    }
}

macro_rules! rw_impl {
    ($t:ty, $read:ident, $write:ident) => {
        /// Read a value of this width in the given order.
        #[inline]
        pub fn $read(order: ByteOrder, bytes: &[u8]) -> $t {
            let arr: [u8; std::mem::size_of::<$t>()] = bytes[..std::mem::size_of::<$t>()]
                .try_into()
                .expect("width checked");
            match order {
                ByteOrder::Big => <$t>::from_be_bytes(arr),
                ByteOrder::Little => <$t>::from_le_bytes(arr),
            }
        }

        /// Serialize a value of this width in the given order.
        #[inline]
        pub fn $write(order: ByteOrder, v: $t) -> [u8; std::mem::size_of::<$t>()] {
            match order {
                ByteOrder::Big => v.to_be_bytes(),
                ByteOrder::Little => v.to_le_bytes(),
            }
        }
    };
}

rw_impl!(u16, read_u16, write_u16);
rw_impl!(u32, read_u32, write_u32);
rw_impl!(u64, read_u64, write_u64);
rw_impl!(i16, read_i16, write_i16);
rw_impl!(i32, read_i32, write_i32);
rw_impl!(i64, read_i64, write_i64);

/// Read an IEEE-754 single in the given order.
#[inline]
pub fn read_f32(order: ByteOrder, bytes: &[u8]) -> f32 {
    f32::from_bits(read_u32(order, bytes))
}

/// Serialize an IEEE-754 single in the given order.
#[inline]
pub fn write_f32(order: ByteOrder, v: f32) -> [u8; 4] {
    write_u32(order, v.to_bits())
}

/// Read an IEEE-754 double in the given order.
#[inline]
pub fn read_f64(order: ByteOrder, bytes: &[u8]) -> f64 {
    f64::from_bits(read_u64(order, bytes))
}

/// Serialize an IEEE-754 double in the given order.
#[inline]
pub fn write_f64(order: ByteOrder, v: f64) -> [u8; 8] {
    write_u64(order, v.to_bits())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_roundtrip() {
        assert_eq!(ByteOrder::from_flag(true), ByteOrder::Little);
        assert_eq!(ByteOrder::from_flag(false), ByteOrder::Big);
        assert!(ByteOrder::Little.flag());
        assert!(!ByteOrder::Big.flag());
        assert_eq!(ByteOrder::Big.swapped(), ByteOrder::Little);
    }

    #[test]
    fn u32_orders() {
        assert_eq!(write_u32(ByteOrder::Big, 0x0102_0304), [1, 2, 3, 4]);
        assert_eq!(write_u32(ByteOrder::Little, 0x0102_0304), [4, 3, 2, 1]);
        assert_eq!(read_u32(ByteOrder::Big, &[1, 2, 3, 4]), 0x0102_0304);
        assert_eq!(read_u32(ByteOrder::Little, &[4, 3, 2, 1]), 0x0102_0304);
    }

    #[test]
    fn f64_roundtrip_both_orders() {
        for order in [ByteOrder::Big, ByteOrder::Little] {
            for v in [
                0.0f64,
                -1.5,
                std::f64::consts::PI,
                f64::MAX,
                f64::MIN_POSITIVE,
            ] {
                assert_eq!(read_f64(order, &write_f64(order, v)), v);
            }
            // NaN payload preserved bit-exactly
            let nan = f64::from_bits(0x7ff8_dead_beef_0001);
            assert_eq!(
                read_f64(order, &write_f64(order, nan)).to_bits(),
                nan.to_bits()
            );
        }
    }

    #[test]
    fn signed_roundtrip() {
        for order in [ByteOrder::Big, ByteOrder::Little] {
            for v in [i32::MIN, -1, 0, 1, i32::MAX] {
                assert_eq!(read_i32(order, &write_i32(order, v)), v);
            }
            for v in [i64::MIN, -42, 0, i64::MAX] {
                assert_eq!(read_i64(order, &write_i64(order, v)), v);
            }
            for v in [i16::MIN, -7, 0, i16::MAX] {
                assert_eq!(read_i16(order, &write_i16(order, v)), v);
            }
        }
    }

    #[test]
    fn native_matches_cfg() {
        let v = 1u32;
        let first = v.to_ne_bytes()[0];
        match ByteOrder::native() {
            ByteOrder::Little => assert_eq!(first, 1),
            ByteOrder::Big => assert_eq!(first, 0),
        }
    }
}
