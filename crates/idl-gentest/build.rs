//! Runs the zc-idl compiler on the fixture IDL at build time; the crate's
//! lib includes the generated Rust, proving that zc-idlc output compiles
//! and interoperates with the ORB.

use std::path::PathBuf;

fn main() {
    println!("cargo:rerun-if-changed=idl/media.idl");
    let src = std::fs::read_to_string("idl/media.idl").expect("read fixture IDL");
    let rust = zc_idl::compile_str(&src).expect("fixture IDL compiles");
    let out = PathBuf::from(std::env::var("OUT_DIR").expect("OUT_DIR"));
    std::fs::write(out.join("media_generated.rs"), rust).expect("write generated code");
}
