//! Drives the zc-idlc-generated stub and skeleton end-to-end over a live
//! ORB — the strongest possible test of the code generator.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use zc_cdr::{OctetSeq, ZcOctetSeq};
use zc_idl_gentest::generated::{
    Codec, EncodeFailed, Encoder, EncoderClient, EncoderSkeleton, FrameInfo,
};
use zc_orb::{Orb, OrbResult};
use zc_transport::{SimConfig, SimNetwork};

/// A test implementation of the generated `Encoder` trait.
struct TestEncoder {
    frames: AtomicU64,
    flushes: AtomicU64,
}

impl Encoder for TestEncoder {
    fn encode(&self, info: FrameInfo, raw: ZcOctetSeq) -> OrbResult<ZcOctetSeq> {
        if info.stream_id == u32::MAX {
            // declared failure path: raise the IDL exception
            return Err(EncodeFailed {
                frame_id: info.stream_id,
                reason: format!("stream {} rejected", info.stream_id),
            }
            .raise());
        }
        self.frames.fetch_add(1, Ordering::SeqCst);
        assert!(info.keyframe || info.pts >= 0);
        // "encode" = pass the frame through untouched (identity codec).
        Ok(raw)
    }

    fn encode_std(&self, _info: FrameInfo, raw: OctetSeq) -> OrbResult<OctetSeq> {
        self.frames.fetch_add(1, Ordering::SeqCst);
        Ok(raw)
    }

    fn batch(&self, frames: Vec<FrameInfo>, codec: Codec) -> OrbResult<u32> {
        assert_eq!(codec, Codec::MPEG4);
        Ok(frames.len() as u32)
    }

    fn stats(&self, rate: f64) -> OrbResult<(f64, u32, f64)> {
        // returns (__ret, frames out-param, rate inout-param)
        Ok((
            rate * 2.0,
            self.frames.load(Ordering::SeqCst) as u32,
            rate + 1.0,
        ))
    }

    fn flush(&self, _epoch: u32) -> OrbResult<()> {
        self.flushes.fetch_add(1, Ordering::SeqCst);
        Ok(())
    }

    fn reset(&self) -> OrbResult<()> {
        self.frames.store(0, Ordering::SeqCst);
        Ok(())
    }
}

fn fixture() -> (EncoderClient, zc_orb::ServerHandle, Orb) {
    let net = SimNetwork::new(SimConfig::zero_copy());
    let server_orb = Orb::builder().sim(net.clone()).build();
    server_orb.adapter().register_key(
        b"encoder",
        Arc::new(EncoderSkeleton(TestEncoder {
            frames: AtomicU64::new(0),
            flushes: AtomicU64::new(0),
        })),
    );
    let server = server_orb.serve(0).unwrap();
    let ior = zc_giop::Ior::new_iiop(EncoderClient::REPO_ID, "sim", server.port(), b"encoder");
    let client_orb = Orb::builder().sim(net).build();
    let obj = client_orb.resolve(&ior).unwrap();
    (EncoderClient::new(obj), server, client_orb)
}

#[test]
fn zero_copy_roundtrip_through_generated_code() {
    let (client, _server, _orb) = fixture();
    let info = FrameInfo {
        stream_id: 1,
        pts: 40,
        keyframe: true,
        label: "gop0/frame0".into(),
    };
    let raw = ZcOctetSeq::with_length(2 << 20);
    let encoded = client.encode(&info, &raw).unwrap();
    assert_eq!(encoded.len(), raw.len());
    assert!(
        encoded.ptr_eq(&raw),
        "identity encode over ZC connection returns the same pages"
    );
}

#[test]
fn standard_roundtrip_through_generated_code() {
    let (client, _server, _orb) = fixture();
    let info = FrameInfo {
        stream_id: 2,
        pts: 80,
        keyframe: false,
        label: "p-frame".into(),
    };
    let data: Vec<u8> = (0..100_000).map(|i| (i % 255) as u8).collect();
    let out = client.encode_std(&info, &OctetSeq(data.clone())).unwrap();
    assert_eq!(out.0, data);
}

#[test]
fn structs_enums_and_sequences() {
    let (client, _server, _orb) = fixture();
    let frames: Vec<FrameInfo> = (0..17)
        .map(|i| FrameInfo {
            stream_id: i,
            pts: i as i64 * 40,
            keyframe: i % 12 == 0,
            label: format!("f{i}"),
        })
        .collect();
    let n = client.batch(&frames, &Codec::MPEG4).unwrap();
    assert_eq!(n, 17);
}

#[test]
fn out_and_inout_parameters() {
    let (client, _server, _orb) = fixture();
    let info = FrameInfo {
        stream_id: 0,
        pts: 0,
        keyframe: true,
        label: String::new(),
    };
    client.encode(&info, &ZcOctetSeq::with_length(16)).unwrap();
    client.encode(&info, &ZcOctetSeq::with_length(16)).unwrap();
    let (doubled, frames, bumped) = client.stats(&12.5).unwrap();
    assert_eq!(doubled, 25.0);
    assert_eq!(frames, 2);
    assert_eq!(bumped, 13.5);
}

#[test]
fn oneway_and_void_operations() {
    let (client, _server, _orb) = fixture();
    client.flush(&7).unwrap();
    client.reset().unwrap();
    let (_, frames, _) = client.stats(&1.0).unwrap();
    assert_eq!(frames, 0, "reset cleared the counter");
}

#[test]
fn unknown_operation_via_raw_request() {
    let (client, _server, _orb) = fixture();
    let err = client
        .object()
        .request("transcode_4k")
        .invoke()
        .unwrap_err();
    assert!(matches!(err, zc_orb::OrbError::System(_)));
}

#[test]
fn declared_exception_roundtrip() {
    let (client, _server, _orb) = fixture();
    let bad = FrameInfo {
        stream_id: u32::MAX,
        pts: 0,
        keyframe: true,
        label: "poison".into(),
    };
    let err = client
        .encode(&bad, &ZcOctetSeq::with_length(16))
        .unwrap_err();
    let ex = EncodeFailed::from_error(&err).expect("typed user exception");
    assert_eq!(ex.frame_id, u32::MAX);
    assert!(ex.reason.contains("rejected"));
    assert_eq!(EncodeFailed::REPO_ID, "IDL:zcorba/media/EncodeFailed:1.0");
    // a different exception type does not falsely match
    assert!(
        zc_idl_gentest::generated::EncodeFailed::from_error(&zc_orb::OrbError::Protocol(
            "x".into()
        ))
        .is_none()
    );
    // the connection stays usable
    let good = FrameInfo {
        stream_id: 1,
        pts: 40,
        keyframe: true,
        label: "ok".into(),
    };
    let out = client.encode(&good, &ZcOctetSeq::with_length(8)).unwrap();
    assert_eq!(out.len(), 8);
}

#[test]
fn repo_id_includes_module_path() {
    assert_eq!(EncoderClient::REPO_ID, "IDL:zcorba/media/Encoder:1.0");
}

#[test]
fn generated_constants() {
    assert_eq!(zc_idl_gentest::generated::MAX_BATCH, 64u32);
    assert_eq!(zc_idl_gentest::generated::CODEC_FAMILY, "mpeg");
}
