//! Compiled output of `zc-idlc` on `idl/media.idl`, included verbatim.
//!
//! The `generated` module is exactly what a user gets from
//! `zc-idlc idl/media.idl -o src/media.rs`; the integration tests in
//! `tests/` run the generated client stub against the generated skeleton
//! over a live ORB.

/// The generated bindings for `idl/media.idl`.
pub mod generated {
    include!(concat!(env!("OUT_DIR"), "/media_generated.rs"));
}
