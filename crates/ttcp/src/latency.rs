//! Round-trip latency measurement — the per-request side of the story.
//!
//! The paper's bandwidth focus complements earlier per-packet/latency work
//! ([18]); real-time systems care about both. This module measures
//! request/response round trips for each TTCP version and reports
//! percentile statistics.

use std::sync::Arc;
use std::time::Instant;

use zc_buffers::{CopyMeter, ZcBytes};
use zc_cdr::{OctetSeq, ZcOctetSeq};
use zc_orb::{ObjectAdapterExt, Orb, OrbResult, Servant, ServerRequest};
use zc_simnet::{OrbMode, SocketMode};
use zc_transport::{Acceptor, SimConfig, SimNetwork, TransportCtx};

use crate::TtcpVersion;

/// Percentile summary of round-trip times, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyStats {
    /// Number of timed round trips.
    pub rounds: usize,
    /// Fastest observed round trip.
    pub min_us: f64,
    /// Arithmetic mean.
    pub mean_us: f64,
    /// Median.
    pub p50_us: f64,
    /// 90th percentile.
    pub p90_us: f64,
    /// 99th percentile.
    pub p99_us: f64,
    /// Slowest observed round trip.
    pub max_us: f64,
}

impl LatencyStats {
    /// Summarize a sample of round-trip durations (µs).
    pub fn from_samples(mut samples: Vec<f64>) -> LatencyStats {
        assert!(!samples.is_empty(), "need at least one sample");
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let pct = |p: f64| -> f64 {
            let idx = ((samples.len() as f64 - 1.0) * p).round() as usize;
            samples[idx]
        };
        LatencyStats {
            rounds: samples.len(),
            min_us: samples[0],
            mean_us: samples.iter().sum::<f64>() / samples.len() as f64,
            p50_us: pct(0.50),
            p90_us: pct(0.90),
            p99_us: pct(0.99),
            max_us: *samples.last().expect("non-empty"),
        }
    }
}

impl std::fmt::Display for LatencyStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} min {:.1} µs  p50 {:.1}  p90 {:.1}  p99 {:.1}  max {:.1}  mean {:.1}",
            self.rounds,
            self.min_us,
            self.p50_us,
            self.p90_us,
            self.p99_us,
            self.max_us,
            self.mean_us
        )
    }
}

struct EchoSink;
impl Servant for EchoSink {
    fn repo_id(&self) -> &'static str {
        "IDL:zcorba/LatencyEcho:1.0"
    }
    fn dispatch(&self, op: &str, req: &mut ServerRequest<'_>) -> OrbResult<()> {
        match op {
            "echo_std" => {
                let d: OctetSeq = req.arg()?;
                req.result(&d)
            }
            "echo_zc" => {
                let d: ZcOctetSeq = req.arg()?;
                req.result(&d)
            }
            other => req.bad_operation(other),
        }
    }
}

fn sim_config(socket: SocketMode) -> SimConfig {
    match socket {
        SocketMode::Copying => SimConfig::copying(),
        SocketMode::ZeroCopy => SimConfig::zero_copy(),
    }
}

/// Measure `rounds` round trips of a `msg_bytes` message over `version`
/// on the in-process stack (plus `warmup` untimed rounds).
pub fn run_latency(
    version: TtcpVersion,
    msg_bytes: usize,
    rounds: usize,
    warmup: usize,
) -> LatencyStats {
    let (socket, orb_mode) = version.to_modes();
    if version.uses_orb() {
        let zc = orb_mode == OrbMode::ZeroCopyOrb;
        let meter = CopyMeter::new_shared();
        let net = SimNetwork::new(sim_config(socket));
        let server_orb = Orb::builder()
            .sim(net.clone())
            .zc(zc)
            .meter(Arc::clone(&meter))
            .build();
        server_orb.adapter().register("lat", Arc::new(EchoSink));
        let server = server_orb.serve(0).unwrap();
        let client = Orb::builder().sim(net).zc(zc).meter(meter).build();
        let obj = client
            .resolve(&server.ior_for("lat", "IDL:zcorba/LatencyEcho:1.0").unwrap())
            .unwrap();

        let payload = ZcBytes::zeroed(msg_bytes);
        let mut samples = Vec::with_capacity(rounds);
        for i in 0..rounds + warmup {
            let t0 = Instant::now();
            if zc {
                let r: ZcOctetSeq = obj
                    .request("echo_zc")
                    .arg(&ZcOctetSeq::from_zc(payload.clone()))
                    .unwrap()
                    .invoke()
                    .unwrap()
                    .result()
                    .unwrap();
                assert_eq!(r.len(), msg_bytes);
            } else {
                let r: OctetSeq = obj
                    .request("echo_std")
                    .arg(&OctetSeq(payload.as_slice().to_vec()))
                    .unwrap()
                    .invoke()
                    .unwrap()
                    .result()
                    .unwrap();
                assert_eq!(r.len(), msg_bytes);
            }
            if i >= warmup {
                samples.push(t0.elapsed().as_secs_f64() * 1e6);
            }
        }
        let stats = LatencyStats::from_samples(samples);
        server.shutdown();
        stats
    } else {
        // raw ping-pong on the data channel
        let net = SimNetwork::new(sim_config(socket));
        let ctx = TransportCtx::new();
        let listener = net.listen(0, ctx.clone()).unwrap();
        let port = listener.endpoint().1;
        let total = rounds + warmup;
        let echo_thread = std::thread::spawn(move || {
            let mut conn = listener.accept().unwrap();
            for _ in 0..total {
                let b = conn.recv_data(msg_bytes).unwrap();
                conn.send_data(&b).unwrap();
            }
        });
        let mut conn = net.connect(port, ctx).unwrap();
        let payload = ZcBytes::zeroed(msg_bytes);
        let mut samples = Vec::with_capacity(rounds);
        for i in 0..total {
            let t0 = Instant::now();
            conn.send_data(&payload).unwrap();
            let back = conn.recv_data(msg_bytes).unwrap();
            assert_eq!(back.len(), msg_bytes);
            if i >= warmup {
                samples.push(t0.elapsed().as_secs_f64() * 1e6);
            }
        }
        echo_thread.join().unwrap();
        LatencyStats::from_samples(samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_math() {
        let s = LatencyStats::from_samples(vec![5.0, 1.0, 3.0, 2.0, 4.0]);
        assert_eq!(s.rounds, 5);
        assert_eq!(s.min_us, 1.0);
        assert_eq!(s.max_us, 5.0);
        assert_eq!(s.p50_us, 3.0);
        assert_eq!(s.mean_us, 3.0);
        assert!(s.p90_us >= s.p50_us && s.p99_us >= s.p90_us);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_sample_panics() {
        LatencyStats::from_samples(vec![]);
    }

    #[test]
    fn all_versions_measure() {
        for v in TtcpVersion::ALL {
            let s = run_latency(v, 4096, 30, 5);
            assert_eq!(s.rounds, 30);
            assert!(s.min_us > 0.0);
            assert!(s.min_us <= s.p50_us && s.p50_us <= s.max_us);
        }
    }

    #[test]
    fn ordering_is_monotone() {
        let s = run_latency(TtcpVersion::CorbaZc, 64 << 10, 50, 5);
        assert!(s.p50_us <= s.p90_us && s.p90_us <= s.p99_us);
    }
}
