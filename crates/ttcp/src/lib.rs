//! zc-ttcp — the TTCP throughput benchmark, in all four versions of §5.1.
//!
//! "The data for the experiments has been produced and consumed by an
//! extended version of the widely available TCP protocol benchmarking tool
//! TTCP. … The following versions of TTCP were implemented and used as
//! benchmarks: Raw TCP …, Zero-Copy TCP …, CORBA …" — plus the zero-copy
//! CORBA version the paper's Figure 6 adds.
//!
//! Every version measures the same thing: the end-to-end goodput of a
//! unidirectional push of `total_bytes` in blocks of `block_bytes` from a
//! transmitter to a receiver, reported in Mbit/s.
//!
//! Two execution modes:
//! * [`run_measured`] — really moves the bytes through this repository's
//!   stack (simulated kernel stacks with real copies, or the real loopback
//!   TCP transport) and reports host-measured Mbit/s together with the
//!   copy accounting;
//! * [`run_modeled`] — evaluates the same configuration on the calibrated
//!   2003 testbed model (`zc-simnet`) and reports paper-scale Mbit/s.
//!
//! The figure harnesses in `zc-bench` print both side by side.

pub mod latency;
pub mod report;
pub mod runner;
pub mod workload;

pub use latency::{run_latency, LatencyStats};
pub use report::{format_series_table, Series};
pub use runner::{run_measured, run_modeled, MeasuredOutcome, TtcpParams, TtcpTransport};
pub use workload::{fill_pattern, verify_pattern};

use zc_simnet::{OrbMode, SocketMode};

/// The four TTCP versions of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TtcpVersion {
    /// Standard TTCP in C over BSD sockets → raw transfer over the
    /// copying stack.
    RawTcp,
    /// TTCP over the zero-copy socket interface \[10\].
    ZcTcp,
    /// TTCP where socket calls are replaced by CORBA stubs/skeletons with a
    /// `sequence<octet>` parameter, over the copying stack.
    CorbaStd,
    /// The all-zero-copy version: `sequence<ZC_Octet>` through the
    /// zero-copy ORB over the zero-copy stack.
    CorbaZc,
    /// Cross combination for Fig. 6 (right): standard ORB over zero-copy
    /// sockets.
    CorbaStdOverZcTcp,
    /// Cross combination for Fig. 6 (right): zero-copy ORB over the
    /// conventional stack.
    CorbaZcOverTcp,
}

impl TtcpVersion {
    /// All versions in report order.
    pub const ALL: [TtcpVersion; 6] = [
        TtcpVersion::RawTcp,
        TtcpVersion::ZcTcp,
        TtcpVersion::CorbaStd,
        TtcpVersion::CorbaStdOverZcTcp,
        TtcpVersion::CorbaZcOverTcp,
        TtcpVersion::CorbaZc,
    ];

    /// Short label for tables.
    pub fn label(self) -> &'static str {
        match self {
            TtcpVersion::RawTcp => "raw TCP",
            TtcpVersion::ZcTcp => "zero-copy TCP",
            TtcpVersion::CorbaStd => "CORBA std",
            TtcpVersion::CorbaZc => "CORBA zc (all zero-copy)",
            TtcpVersion::CorbaStdOverZcTcp => "CORBA std / zc-TCP",
            TtcpVersion::CorbaZcOverTcp => "CORBA zc / std-TCP",
        }
    }

    /// Map onto the simnet configuration space.
    pub fn to_modes(self) -> (SocketMode, OrbMode) {
        match self {
            TtcpVersion::RawTcp => (SocketMode::Copying, OrbMode::None),
            TtcpVersion::ZcTcp => (SocketMode::ZeroCopy, OrbMode::None),
            TtcpVersion::CorbaStd => (SocketMode::Copying, OrbMode::Standard),
            TtcpVersion::CorbaZc => (SocketMode::ZeroCopy, OrbMode::ZeroCopyOrb),
            TtcpVersion::CorbaStdOverZcTcp => (SocketMode::ZeroCopy, OrbMode::Standard),
            TtcpVersion::CorbaZcOverTcp => (SocketMode::Copying, OrbMode::ZeroCopyOrb),
        }
    }

    /// Whether the ORB is involved at all.
    pub fn uses_orb(self) -> bool {
        !matches!(self, TtcpVersion::RawTcp | TtcpVersion::ZcTcp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn version_mode_mapping() {
        assert_eq!(
            TtcpVersion::RawTcp.to_modes(),
            (SocketMode::Copying, OrbMode::None)
        );
        assert_eq!(
            TtcpVersion::CorbaZc.to_modes(),
            (SocketMode::ZeroCopy, OrbMode::ZeroCopyOrb)
        );
        assert!(TtcpVersion::CorbaStd.uses_orb());
        assert!(!TtcpVersion::ZcTcp.uses_orb());
    }
}
