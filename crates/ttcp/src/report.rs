//! Tabular reports in the shape of the paper's figures.

/// One data series (a line in a figure): a label plus one value per block
/// size.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// Mbit/s per block size, aligned with the sizes column.
    pub values: Vec<f64>,
}

impl Series {
    /// Construct a series.
    pub fn new(name: impl Into<String>, values: Vec<f64>) -> Series {
        Series {
            name: name.into(),
            values,
        }
    }
}

/// Human-readable size (4K, 64K, 1M, 16M…).
pub fn human_size(bytes: usize) -> String {
    if bytes >= 1 << 20 && bytes.is_multiple_of(1 << 20) {
        format!("{}M", bytes >> 20)
    } else if bytes >= 1 << 10 && bytes.is_multiple_of(1 << 10) {
        format!("{}K", bytes >> 10)
    } else {
        format!("{bytes}")
    }
}

/// Render a figure-style table: block sizes down the rows, one column per
/// series, Mbit/s in the cells.
pub fn format_series_table(title: &str, sizes: &[usize], series: &[Series]) -> String {
    let mut out = String::new();
    out.push_str(&format!("## {title}\n\n"));
    out.push_str(&format!("{:>10}", "block"));
    for s in series {
        out.push_str(&format!("  {:>24}", s.name));
    }
    out.push('\n');
    out.push_str(&"-".repeat(10 + series.len() * 26));
    out.push('\n');
    for (row, &size) in sizes.iter().enumerate() {
        out.push_str(&format!("{:>10}", human_size(size)));
        for s in series {
            match s.values.get(row) {
                Some(v) => out.push_str(&format!("  {:>17.1} Mbit/s", v)),
                None => out.push_str(&format!("  {:>24}", "-")),
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_sizes() {
        assert_eq!(human_size(4096), "4K");
        assert_eq!(human_size(1 << 20), "1M");
        assert_eq!(human_size(16 << 20), "16M");
        assert_eq!(human_size(1000), "1000");
    }

    #[test]
    fn table_contains_all_cells() {
        let t = format_series_table(
            "Figure X",
            &[4096, 8192],
            &[
                Series::new("raw TCP", vec![100.0, 200.0]),
                Series::new("CORBA", vec![10.0, 20.5]),
            ],
        );
        assert!(t.contains("Figure X"));
        assert!(t.contains("4K"));
        assert!(t.contains("8K"));
        assert!(t.contains("200.0 Mbit/s"));
        assert!(t.contains("20.5 Mbit/s"));
        assert_eq!(t.lines().count(), 2 + 2 + 2);
    }

    #[test]
    fn missing_values_render_dashes() {
        let t = format_series_table("T", &[1, 2], &[Series::new("s", vec![1.0])]);
        assert!(t.contains('-'));
    }
}
