//! The measured and modeled TTCP runners.

use std::sync::Arc;
use std::time::{Duration, Instant};

use zc_buffers::{AlignedBuf, CopyMeter, CopySnapshot, ZcBytes};
use zc_cdr::{OctetSeq, ZcOctetSeq};
use zc_orb::{ObjectAdapterExt, Orb, OrbResult, Servant, ServerRequest};
use zc_simnet::{predict, OrbMode, Scenario, SocketMode};
use zc_trace::{OrbTelemetry, Telemetry};
use zc_transport::{Acceptor, SimConfig, SimNetwork, TransportCtx};

use crate::workload::{fill_pattern, verify_pattern};
use crate::TtcpVersion;

/// Which transport substrate carries the measured run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TtcpTransport {
    /// The in-process simulated kernel stacks (default; this is where the
    /// copying/zero-copy distinction is architecturally faithful).
    Sim,
    /// Real loopback TCP (socket-mode distinction collapses to what the
    /// host kernel does; useful for sanity checks on live sockets).
    Tcp,
}

/// Parameters of one TTCP run.
#[derive(Debug, Clone, Copy)]
pub struct TtcpParams {
    /// Which of the paper's versions to run.
    pub version: TtcpVersion,
    /// Bytes per block (4 KiB-aligned in the paper).
    pub block_bytes: usize,
    /// Total payload to move.
    pub total_bytes: usize,
    /// Substrate for the measured run.
    pub transport: TtcpTransport,
    /// Verify the received contents block by block (generation excluded
    /// from the timed section).
    pub verify: bool,
    /// Workload seed.
    pub seed: u64,
    /// Run with telemetry enabled (flight recorder + metrics); the merged
    /// snapshot lands in [`MeasuredOutcome::telemetry`].
    pub traced: bool,
}

impl TtcpParams {
    /// A quick default: `version` moving `total` in `block`-sized units
    /// over the simulated stacks.
    pub fn new(version: TtcpVersion, block_bytes: usize, total_bytes: usize) -> TtcpParams {
        TtcpParams {
            version,
            block_bytes,
            total_bytes,
            transport: TtcpTransport::Sim,
            verify: false,
            seed: 0x7C_7C,
            traced: false,
        }
    }

    fn telemetry(&self) -> Arc<Telemetry> {
        if self.traced {
            Telemetry::new_shared()
        } else {
            Telemetry::disabled()
        }
    }

    fn blocks(&self) -> usize {
        (self.total_bytes / self.block_bytes).max(1)
    }
}

/// The result of a measured run.
#[derive(Debug, Clone)]
pub struct MeasuredOutcome {
    /// Goodput in Mbit/s measured on this host.
    pub mbit_s: f64,
    /// Number of blocks moved.
    pub blocks: usize,
    /// Wall-clock time of the timed section.
    pub wall: Duration,
    /// Copy-meter delta over the timed section (the per-layer story).
    pub copies: CopySnapshot,
    /// Overhead bytes copied per payload byte moved (0.0 on a perfect
    /// zero-copy path, ≥ 4.0 on the conventional one).
    pub overhead_copy_factor: f64,
    /// Merged telemetry snapshot (`Some` when the run was traced).
    pub telemetry: Option<OrbTelemetry>,
}

/// Evaluate the configuration on the calibrated 2003 testbed model;
/// returns paper-scale Mbit/s.
pub fn run_modeled(version: TtcpVersion, block_bytes: usize) -> f64 {
    let (socket, orb) = version.to_modes();
    predict(&Scenario::on_testbed(socket, orb, block_bytes))
}

/// Evaluate the configuration on a machine/link of choice.
pub fn run_modeled_on(
    version: TtcpVersion,
    block_bytes: usize,
    machine: zc_simnet::MachineSpec,
    link: zc_simnet::LinkSpec,
) -> f64 {
    let (socket, orb) = version.to_modes();
    predict(&Scenario {
        machine,
        link,
        socket,
        orb,
        block_bytes,
    })
}

fn sim_config(socket: SocketMode) -> SimConfig {
    match socket {
        SocketMode::Copying => SimConfig::copying(),
        SocketMode::ZeroCopy => SimConfig::zero_copy(),
    }
}

/// Build the source blocks (outside the timed section).
fn make_blocks(params: &TtcpParams, meter: &CopyMeter) -> Vec<ZcBytes> {
    let n = if params.verify { params.blocks() } else { 1 };
    (0..n)
        .map(|i| {
            let mut buf = AlignedBuf::zeroed(params.block_bytes);
            fill_pattern(buf.as_mut_slice(), params.seed, i as u64);
            meter.record(zc_buffers::CopyLayer::AppFill, params.block_bytes);
            ZcBytes::from_aligned(buf)
        })
        .collect()
}

fn block_for(blocks: &[ZcBytes], i: usize) -> &ZcBytes {
    &blocks[i % blocks.len()]
}

/// Run the measured benchmark; really moves the bytes.
pub fn run_measured(params: &TtcpParams) -> MeasuredOutcome {
    if params.version.uses_orb() {
        run_measured_corba(params)
    } else {
        run_measured_raw(params)
    }
}

/// Raw socket TTCP: direct data-channel push, no middleware.
fn run_measured_raw(params: &TtcpParams) -> MeasuredOutcome {
    let (socket, _) = params.version.to_modes();
    let meter = CopyMeter::new_shared();
    let telemetry = params.telemetry();
    let ctx = TransportCtx::with_telemetry(Arc::clone(&meter), Arc::clone(&telemetry));
    let blocks = make_blocks(params, &meter);
    let n_blocks = params.blocks();
    let block_bytes = params.block_bytes;
    let verify = params.verify;
    let seed = params.seed;

    let (mut tx_conn, rx_handle) = match params.transport {
        TtcpTransport::Sim => {
            let net = SimNetwork::new(sim_config(socket));
            let listener = net.listen(0, ctx.clone()).unwrap();
            let port = listener.endpoint().1;
            let rx = std::thread::spawn(move || {
                let mut conn = listener.accept().expect("accept");
                for i in 0..n_blocks {
                    let b = conn.recv_data(block_bytes).expect("recv block");
                    if verify {
                        assert!(
                            verify_pattern(&b, seed, i as u64),
                            "block {i} corrupted in transit"
                        );
                    }
                }
            });
            (net.connect(port, ctx.clone()).unwrap(), rx)
        }
        TtcpTransport::Tcp => {
            let listener = zc_transport::TcpTransportListener::bind(0, ctx.clone()).unwrap();
            let (host, port) = listener.endpoint();
            let rx = std::thread::spawn(move || {
                let mut conn = listener.accept().expect("accept");
                for i in 0..n_blocks {
                    let b = conn.recv_data(block_bytes).expect("recv block");
                    if verify {
                        assert!(verify_pattern(&b, seed, i as u64), "block {i} corrupted");
                    }
                }
            });
            let connector = zc_transport::TcpConnector { ctx: ctx.clone() };
            (
                zc_transport::Connector::connect(&connector, &host, port).unwrap(),
                rx,
            )
        }
    };

    let before = meter.snapshot();
    let start = Instant::now();
    for i in 0..n_blocks {
        tx_conn
            .send_data(block_for(&blocks, i))
            .expect("send block");
    }
    rx_handle.join().expect("receiver");
    let wall = start.elapsed();
    let snap = params
        .traced
        .then(|| telemetry.orb_snapshot(meter.snapshot(), ctx.pool.stats()));
    finish(params, meter.snapshot().since(&before), wall, snap)
}

/// The TTCP sink servant: `push_std(sequence<octet>)` and
/// `push_zc(sequence<ZC_Octet>)`, each acknowledging with the length.
struct TtcpSink {
    verify: bool,
    seed: u64,
}

impl Servant for TtcpSink {
    fn repo_id(&self) -> &'static str {
        "IDL:zcorba/TtcpSink:1.0"
    }
    fn dispatch(&self, op: &str, req: &mut ServerRequest<'_>) -> OrbResult<()> {
        match op {
            "push_std" => {
                let i: u64 = req.arg()?;
                let data: OctetSeq = req.arg()?;
                if self.verify {
                    assert!(verify_pattern(&data, self.seed, i), "block {i} corrupted");
                }
                req.result(&(data.len() as u32))
            }
            "push_zc" => {
                let i: u64 = req.arg()?;
                let data: ZcOctetSeq = req.arg()?;
                if self.verify {
                    assert!(verify_pattern(&data, self.seed, i), "block {i} corrupted");
                }
                req.result(&(data.len() as u32))
            }
            other => req.bad_operation(other),
        }
    }
}

/// CORBA TTCP: the socket calls are "replaced by stubs and skeletons".
fn run_measured_corba(params: &TtcpParams) -> MeasuredOutcome {
    let (socket, orb_mode) = params.version.to_modes();
    let meter = CopyMeter::new_shared();
    // One telemetry handle shared by both ORBs: client and server spans
    // land in a single merged event stream.
    let telemetry = params.telemetry();
    let zc_orb_enabled = orb_mode == OrbMode::ZeroCopyOrb;

    let (server_orb, client_orb) = match params.transport {
        TtcpTransport::Sim => {
            let net = SimNetwork::new(sim_config(socket));
            (
                Orb::builder()
                    .sim(net.clone())
                    .zc(zc_orb_enabled)
                    .meter(Arc::clone(&meter))
                    .telemetry(Arc::clone(&telemetry))
                    .build(),
                Orb::builder()
                    .sim(net)
                    .zc(zc_orb_enabled)
                    .meter(Arc::clone(&meter))
                    .telemetry(Arc::clone(&telemetry))
                    .build(),
            )
        }
        TtcpTransport::Tcp => (
            Orb::builder()
                .tcp()
                .zc(zc_orb_enabled)
                .meter(Arc::clone(&meter))
                .telemetry(Arc::clone(&telemetry))
                .build(),
            Orb::builder()
                .tcp()
                .zc(zc_orb_enabled)
                .meter(Arc::clone(&meter))
                .telemetry(Arc::clone(&telemetry))
                .build(),
        ),
    };

    server_orb.adapter().register(
        "ttcp-sink",
        Arc::new(TtcpSink {
            verify: params.verify,
            seed: params.seed,
        }),
    );
    let server = server_orb.serve(0).unwrap();
    let ior = server
        .ior_for("ttcp-sink", "IDL:zcorba/TtcpSink:1.0")
        .unwrap();
    let obj = client_orb.resolve(&ior).unwrap();

    let blocks = make_blocks(params, &meter);
    let n_blocks = params.blocks();

    // Warm-up round (connection establishment, negotiation) outside timing.
    let warm = ZcOctetSeq::from_zc(blocks[0].clone());
    if zc_orb_enabled {
        obj.request("push_zc")
            .arg(&u64::MAX)
            .unwrap()
            .arg(&ZcOctetSeq::with_length(0))
            .unwrap()
            .invoke()
            .unwrap();
    } else {
        obj.request("push_std")
            .arg(&u64::MAX)
            .unwrap()
            .arg(&OctetSeq(Vec::new()))
            .unwrap()
            .invoke()
            .unwrap();
    }
    drop(warm);

    let before = meter.snapshot();
    let start = Instant::now();
    for i in 0..n_blocks {
        let block = block_for(&blocks, i);
        let ack: u32 = if zc_orb_enabled {
            obj.request("push_zc")
                .arg(&(i as u64))
                .unwrap()
                .arg(&ZcOctetSeq::from_zc(block.clone()))
                .unwrap()
                .invoke()
                .unwrap()
                .result()
                .unwrap()
        } else {
            // The standard version pays the app→OctetSeq staging copy the
            // moment it builds the parameter, exactly like MICO's client.
            obj.request("push_std")
                .arg(&(i as u64))
                .unwrap()
                .arg(&OctetSeq(block.as_slice().to_vec()))
                .unwrap()
                .invoke()
                .unwrap()
                .result()
                .unwrap()
        };
        assert_eq!(ack as usize, params.block_bytes, "sink acked wrong length");
    }
    let wall = start.elapsed();
    let snap = params.traced.then(|| client_orb.telemetry_snapshot());
    let outcome = finish(params, meter.snapshot().since(&before), wall, snap);
    server.shutdown();
    outcome
}

fn finish(
    params: &TtcpParams,
    copies: CopySnapshot,
    wall: Duration,
    telemetry: Option<OrbTelemetry>,
) -> MeasuredOutcome {
    let payload = (params.blocks() * params.block_bytes) as f64;
    let mbit_s = payload * 8.0 / wall.as_secs_f64() / 1e6;
    MeasuredOutcome {
        mbit_s,
        blocks: params.blocks(),
        wall,
        copies,
        overhead_copy_factor: copies.overhead_bytes() as f64 / payload.max(1.0),
        telemetry,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BLOCK: usize = 64 * 1024;
    const TOTAL: usize = 1 << 20;

    #[test]
    fn all_versions_run_and_verify() {
        for version in TtcpVersion::ALL {
            let mut p = TtcpParams::new(version, BLOCK, TOTAL);
            p.verify = true;
            let out = run_measured(&p);
            assert!(out.mbit_s > 0.0, "{version:?}");
            assert_eq!(out.blocks, TOTAL / BLOCK);
        }
    }

    #[test]
    fn raw_over_real_tcp() {
        let mut p = TtcpParams::new(TtcpVersion::RawTcp, BLOCK, TOTAL);
        p.transport = TtcpTransport::Tcp;
        p.verify = true;
        let out = run_measured(&p);
        assert!(out.mbit_s > 0.0);
    }

    #[test]
    fn corba_over_real_tcp() {
        let mut p = TtcpParams::new(TtcpVersion::CorbaZc, BLOCK, TOTAL);
        p.transport = TtcpTransport::Tcp;
        p.verify = true;
        let out = run_measured(&p);
        assert!(out.mbit_s > 0.0);
    }

    #[test]
    fn copy_accounting_separates_the_versions() {
        // The measured copy factors must tell the paper's story regardless
        // of host speed: conventional path ≥ 4 traversals, all-zero-copy
        // path ≈ 0.
        let std_out = run_measured(&TtcpParams::new(TtcpVersion::CorbaStd, BLOCK, TOTAL));
        assert!(
            std_out.overhead_copy_factor >= 4.0,
            "std CORBA copies {}×",
            std_out.overhead_copy_factor
        );
        let zc_out = run_measured(&TtcpParams::new(TtcpVersion::CorbaZc, BLOCK, TOTAL));
        assert!(
            zc_out.overhead_copy_factor < 0.05,
            "all-zc copies {}×",
            zc_out.overhead_copy_factor
        );
        let raw_out = run_measured(&TtcpParams::new(TtcpVersion::RawTcp, BLOCK, TOTAL));
        assert!(
            raw_out.overhead_copy_factor >= 3.9 && raw_out.overhead_copy_factor < 4.5,
            "raw TCP copies {}×",
            raw_out.overhead_copy_factor
        );
        let zc_tcp = run_measured(&TtcpParams::new(TtcpVersion::ZcTcp, BLOCK, TOTAL));
        assert!(zc_tcp.overhead_copy_factor < 0.05);
    }

    #[test]
    fn measured_zero_copy_is_faster_on_this_host_too() {
        // 8 MiB in 1 MiB blocks: enough real memcpy work that the ordering
        // is robust on any host.
        let total = 8 << 20;
        let block = 1 << 20;
        let std_out = run_measured(&TtcpParams::new(TtcpVersion::CorbaStd, block, total));
        let zc_out = run_measured(&TtcpParams::new(TtcpVersion::CorbaZc, block, total));
        assert!(
            zc_out.mbit_s > std_out.mbit_s,
            "zc {:.0} ≤ std {:.0} Mbit/s",
            zc_out.mbit_s,
            std_out.mbit_s
        );
    }

    #[test]
    fn modeled_matches_paper_anchors() {
        let big = 16 << 20;
        let std = run_modeled(TtcpVersion::CorbaStd, big);
        let zc = run_modeled(TtcpVersion::CorbaZc, big);
        let raw = run_modeled(TtcpVersion::RawTcp, big);
        assert!((38.0..62.0).contains(&std));
        assert!((280.0..380.0).contains(&raw));
        assert!((480.0..640.0).contains(&zc));
    }
}
