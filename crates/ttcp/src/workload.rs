//! Workload generation: deterministic, cheaply verifiable block contents.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Fill `buf` with a deterministic pseudo-random pattern derived from
/// `seed` and the block index — cheap to generate, and any
/// truncation/reordering/corruption in the transfer is caught by
/// [`verify_pattern`].
pub fn fill_pattern(buf: &mut [u8], seed: u64, block_index: u64) {
    let mut rng = StdRng::seed_from_u64(seed ^ block_index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    // Fill 8 bytes at a time; tail byte-wise.
    let mut chunks = buf.chunks_exact_mut(8);
    for c in &mut chunks {
        c.copy_from_slice(&rng.gen::<u64>().to_le_bytes());
    }
    for b in chunks.into_remainder() {
        *b = rng.gen();
    }
}

/// Check that `buf` holds exactly the pattern of (`seed`, `block_index`).
pub fn verify_pattern(buf: &[u8], seed: u64, block_index: u64) -> bool {
    let mut expect = vec![0u8; buf.len()];
    fill_pattern(&mut expect, seed, block_index);
    expect == buf
}

/// A fast order-independent checksum used by sinks that only need to prove
/// they observed the bytes (not their order).
pub fn fletcher64(buf: &[u8]) -> u64 {
    let mut a: u64 = 0;
    let mut b: u64 = 0;
    for chunk in buf.chunks(4) {
        let mut w = [0u8; 4];
        w[..chunk.len()].copy_from_slice(chunk);
        a = a.wrapping_add(u32::from_le_bytes(w) as u64);
        b = b.wrapping_add(a);
    }
    (b << 32) | (a & 0xFFFF_FFFF)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_roundtrip() {
        let mut buf = vec![0u8; 10_007];
        fill_pattern(&mut buf, 42, 3);
        assert!(verify_pattern(&buf, 42, 3));
        assert!(!verify_pattern(&buf, 42, 4));
        assert!(!verify_pattern(&buf, 43, 3));
    }

    #[test]
    fn pattern_detects_corruption() {
        let mut buf = vec![0u8; 4096];
        fill_pattern(&mut buf, 1, 1);
        buf[2000] ^= 1;
        assert!(!verify_pattern(&buf, 1, 1));
    }

    #[test]
    fn distinct_blocks_are_distinct() {
        let mut a = vec![0u8; 256];
        let mut b = vec![0u8; 256];
        fill_pattern(&mut a, 7, 0);
        fill_pattern(&mut b, 7, 1);
        assert_ne!(a, b);
    }

    #[test]
    fn checksum_sensitive_to_content_and_length() {
        let a = fletcher64(b"hello world");
        let b = fletcher64(b"hello worle");
        let c = fletcher64(b"hello worl");
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, fletcher64(b"hello world"));
    }

    #[test]
    fn empty_buffers() {
        let mut empty: [u8; 0] = [];
        fill_pattern(&mut empty, 0, 0);
        assert!(verify_pattern(&empty, 0, 0));
        assert_eq!(fletcher64(&empty), 0);
    }
}
