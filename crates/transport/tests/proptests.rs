//! Property tests for the transports: payload integrity under arbitrary
//! sizes, interleavings and speculation rates, on both stack modes.

use proptest::prelude::*;

use zc_buffers::{AlignedBuf, ZcBytes};
use zc_transport::{Acceptor, Connection, SimConfig, SimNetwork, TransportCtx};

fn pair(cfg: SimConfig) -> (Box<dyn Connection>, Box<dyn Connection>) {
    let net = SimNetwork::new(cfg);
    let ctx = TransportCtx::new();
    let listener = net.listen(0, ctx.clone()).unwrap();
    let port = listener.endpoint().1;
    let client = net.connect(port, ctx).unwrap();
    let server = listener.accept().unwrap();
    (client, server)
}

fn block_of(data: &[u8]) -> ZcBytes {
    let mut b = AlignedBuf::with_capacity(data.len());
    b.extend_from_slice(data);
    ZcBytes::from_aligned(b)
}

fn configs() -> impl Strategy<Value = SimConfig> {
    prop_oneof![
        Just(SimConfig::copying()),
        Just(SimConfig::zero_copy()),
        (0.0f64..=1.0).prop_map(SimConfig::zero_copy_with_speculation),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any byte string of any size survives the data path bit-exactly.
    #[test]
    fn prop_data_integrity(
        cfg in configs(),
        data in proptest::collection::vec(any::<u8>(), 0..50_000),
    ) {
        let (mut c, mut s) = pair(cfg);
        let block = block_of(&data);
        c.send_data(&block).unwrap();
        let got = s.recv_data(data.len()).unwrap();
        prop_assert_eq!(got.as_slice(), &data[..]);
    }

    /// Control messages of any size survive bit-exactly, in order.
    #[test]
    fn prop_control_integrity_and_order(
        cfg in configs(),
        msgs in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..2000), 1..10),
    ) {
        let (mut c, mut s) = pair(cfg);
        for m in &msgs {
            c.send_control(m).unwrap();
        }
        for m in &msgs {
            prop_assert_eq!(&s.recv_control().unwrap(), m);
        }
    }

    /// Arbitrary interleavings of control and data on the sender resolve
    /// correctly on the receiver regardless of the order it asks in.
    #[test]
    fn prop_interleaving(
        cfg in configs(),
        script in proptest::collection::vec((any::<bool>(), 1usize..5000), 1..8),
        recv_control_first: bool,
    ) {
        let (mut c, mut s) = pair(cfg);
        let mut controls = Vec::new();
        let mut datas = Vec::new();
        for (i, &(is_control, size)) in script.iter().enumerate() {
            let payload: Vec<u8> = (0..size).map(|j| ((i * 31 + j) % 251) as u8).collect();
            if is_control {
                c.send_control(&payload).unwrap();
                controls.push(payload);
            } else {
                c.send_data(&block_of(&payload)).unwrap();
                datas.push(payload);
            }
        }
        let check_controls = |s: &mut Box<dyn Connection>| {
            for m in &controls {
                assert_eq!(&s.recv_control().unwrap(), m);
            }
        };
        let check_datas = |s: &mut Box<dyn Connection>| {
            for m in &datas {
                assert_eq!(s.recv_data(m.len()).unwrap().as_slice(), &m[..]);
            }
        };
        if recv_control_first {
            check_controls(&mut s);
            check_datas(&mut s);
        } else {
            check_datas(&mut s);
            check_controls(&mut s);
        }
    }

    /// Bidirectional traffic does not cross-contaminate.
    #[test]
    fn prop_full_duplex(
        cfg in configs(),
        a in proptest::collection::vec(any::<u8>(), 0..5000),
        b in proptest::collection::vec(any::<u8>(), 0..5000),
    ) {
        let (mut c, mut s) = pair(cfg);
        c.send_data(&block_of(&a)).unwrap();
        s.send_data(&block_of(&b)).unwrap();
        let got_a = s.recv_data(a.len()).unwrap();
        let got_b = c.recv_data(b.len()).unwrap();
        prop_assert_eq!(got_a.as_slice(), &a[..]);
        prop_assert_eq!(got_b.as_slice(), &b[..]);
    }

    /// Speculation hits + misses always sum to the number of blocks, and
    /// integrity holds at every probability.
    #[test]
    fn prop_speculation_accounting(p in 0.0f64..=1.0, blocks in 1usize..20) {
        let (mut c, mut s) = pair(SimConfig::zero_copy_with_speculation(p));
        for i in 0..blocks {
            let data = vec![i as u8; 4096];
            c.send_data(&block_of(&data)).unwrap();
            let got = s.recv_data(4096).unwrap();
            prop_assert_eq!(got.as_slice(), &data[..]);
        }
        let st = s.stats();
        prop_assert_eq!(st.spec_hits + st.spec_misses, blocks as u64);
    }
}
