//! Real loopback TCP transport.
//!
//! The paper's testbed ran a real TCP/IP stack; we provide the same for
//! end-to-end runs on the host. From user space, a portable TCP transport
//! cannot avoid the user/kernel crossings, so the data path costs exactly
//! one `write` copy on the sender and one `read` copy into a page-aligned
//! buffer on the receiver — both metered. The control/data separation is
//! kept at the framing level (a lane tag per frame), preserving the ORB's
//! "announce, then deposit" protocol shape on a real socket.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

use zc_buffers::{CopyLayer, ZcBytes};

use crate::stats::{ConnStats, StatsCell, TransportField};
use crate::{Acceptor, Connection, Connector, TResult, TransportCtx, TransportError};

const LANE_CONTROL: u8 = 0;
const LANE_DATA: u8 = 1;

/// Upper bound for a single TCP frame. A frame carries at most one GIOP
/// message (64 MiB cap) or one data block, and every real workload stays
/// far below that, so anything larger is corruption or a hostile header —
/// and the announced length sizes a buffer allocation, so the cap is also
/// the receiver's worst-case allocation from a 9-byte header.
pub const MAX_TCP_FRAME: u64 = 64 << 20;

/// Validate a wire-announced frame length against [`MAX_TCP_FRAME`] and
/// convert it for allocation. Every allocation sized by a peer-controlled
/// length must pass through here first (wire-taint invariant).
fn checked_frame_len(len: u64) -> TResult<usize> {
    if len > MAX_TCP_FRAME {
        // zc-audit: allow(control-plane) — protocol error diagnostic
        return Err(TransportError::Protocol(format!(
            "frame announces {len} bytes, above the {MAX_TCP_FRAME} byte cap"
        )));
    }
    Ok(len as usize)
}

/// A TCP connection speaking the zcorba lane framing:
/// `lane(1) | length(8, little-endian) | payload`.
pub struct TcpConn {
    stream: TcpStream,
    ctx: TransportCtx,
    peer: String,
    pending_control: std::collections::VecDeque<Vec<u8>>,
    pending_data: std::collections::VecDeque<ZcBytes>,
    stats: Arc<StatsCell>,
    trace_conn: u64,
}

impl TcpConn {
    fn new(stream: TcpStream, ctx: TransportCtx) -> TResult<TcpConn> {
        stream.set_nodelay(true)?;
        let peer = stream
            .peer_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| "tcp:?".to_string());
        let stats = StatsCell::with_telemetry(ctx.conn_mirror());
        Ok(TcpConn {
            stream,
            ctx,
            peer,
            pending_control: Default::default(),
            pending_data: Default::default(),
            stats,
            trace_conn: zc_trace::next_conn_id(),
        })
    }

    fn write_frame(&mut self, lane: u8, payload: &[u8]) -> TResult<()> {
        let mut header = [0u8; 9];
        header[0] = lane;
        // zc-audit: allow(control-plane) — 9-byte frame header, no payload bytes
        header[1..9].copy_from_slice(&(payload.len() as u64).to_le_bytes());
        self.stream.write_all(&header)?;
        // The kernel copies the payload out of user space here.
        self.ctx.meter.record(CopyLayer::SocketSend, payload.len());
        self.stream.write_all(payload)?;
        self.stats.add(TransportField::FramesSent, 1);
        self.stats
            .add(TransportField::WireBytesSent, (payload.len() + 9) as u64);
        Ok(())
    }

    fn read_exact(&mut self, buf: &mut [u8]) -> TResult<()> {
        self.stream.read_exact(buf)?;
        Ok(())
    }

    /// Read one frame; returns `(lane, payload)` with the payload already
    /// landed in a page-aligned buffer (one metered kernel→user copy).
    fn read_frame(&mut self) -> TResult<(u8, ZcBytes)> {
        let mut header = [0u8; 9];
        self.read_exact(&mut header)?;
        let lane = header[0];
        let len = match <[u8; 8]>::try_from(&header[1..9]) {
            Ok(b) => u64::from_le_bytes(b),
            // `header` is 9 bytes, so the 8-byte window always converts;
            // an error return keeps hostile input away from any panic.
            Err(_) => return Err(TransportError::Protocol("malformed frame header".into())),
        };
        let len = checked_frame_len(len)?;
        let mut buf = self.ctx.pool.acquire(len.max(1));
        buf.set_len(len);
        self.read_exact(buf.as_mut_slice())?;
        // Account the kernel→user copy `read` just performed.
        self.ctx.meter.record(CopyLayer::SocketRecv, len);
        self.stats
            .add(TransportField::WireBytesRecv, (len + 9) as u64);
        Ok((lane, buf.freeze()))
    }

    /// Read frames until one on `want` appears, buffering others.
    fn next_on_lane(&mut self, want: u8) -> TResult<ZcBytes> {
        loop {
            if want == LANE_CONTROL {
                if let Some(m) = self.pending_control.pop_front() {
                    return Ok({
                        // zc-audit: allow(taint-alloc) — sized by control bytes already received and held; read_frame bounds every frame to MAX_TCP_FRAME
                        let mut b = zc_buffers::AlignedBuf::with_capacity(m.len());
                        // zc-audit: allow(copy) — queued control bytes rewrapped into aligned storage; accounted as SocketRecv
                        b.extend_from_slice(&m);
                        ZcBytes::from_aligned(b)
                    });
                }
            } else if let Some(z) = self.pending_data.pop_front() {
                return Ok(z);
            }
            let (lane, payload) = self.read_frame()?;
            if lane == want {
                return Ok(payload);
            }
            match lane {
                // zc-audit: allow(copy) — out-of-order control frame parked as owned bytes; accounted as SocketRecv
                LANE_CONTROL => self.pending_control.push_back(payload.as_slice().to_vec()),
                LANE_DATA => self.pending_data.push_back(payload),
                other => {
                    // zc-audit: allow(control-plane) — protocol error diagnostic
                    return Err(TransportError::Protocol(format!(
                        "unknown lane tag {other}"
                    )));
                }
            }
        }
    }
}

impl Connection for TcpConn {
    fn send_control(&mut self, msg: &[u8]) -> TResult<()> {
        self.stats.add(TransportField::ControlSent, 1);
        self.stats.add(TransportField::BytesSent, msg.len() as u64);
        self.write_frame(LANE_CONTROL, msg)
    }

    fn recv_control(&mut self) -> TResult<Vec<u8>> {
        let z = self.next_on_lane(LANE_CONTROL)?;
        self.stats.add(TransportField::ControlRecv, 1);
        self.stats.add(TransportField::BytesRecv, z.len() as u64);
        // zc-audit: allow(copy) — control path hands out owned bytes; accounted as SocketRecv
        Ok(z.as_slice().to_vec())
    }

    fn send_data(&mut self, block: &ZcBytes) -> TResult<()> {
        self.stats.add(TransportField::DataBlocksSent, 1);
        self.stats
            .add(TransportField::BytesSent, block.len() as u64);
        self.write_frame(LANE_DATA, block.as_slice())
    }

    fn recv_data(&mut self, expected_len: usize) -> TResult<ZcBytes> {
        let z = self.next_on_lane(LANE_DATA)?;
        if z.len() != expected_len {
            // zc-audit: allow(control-plane) — protocol error diagnostic
            return Err(TransportError::Protocol(format!(
                "data block length {} does not match announced {expected_len}",
                z.len()
            )));
        }
        self.stats.add(TransportField::DataBlocksRecv, 1);
        self.stats.add(TransportField::BytesRecv, z.len() as u64);
        if self.ctx.telemetry.is_enabled() {
            // A TCP data block always arrives as one frame.
            self.ctx.telemetry.metrics().frames_per_block.record(1);
        }
        Ok(z)
    }

    fn is_zero_copy(&self) -> bool {
        false
    }

    fn stats(&self) -> ConnStats {
        self.stats.snapshot()
    }

    fn peer(&self) -> String {
        // zc-audit: allow(control-plane) — short peer-name string for diagnostics
        format!("tcp:{}", self.peer)
    }

    fn set_recv_timeout(&mut self, timeout: Option<std::time::Duration>) -> TResult<()> {
        self.stream.set_read_timeout(timeout)?;
        Ok(())
    }

    fn trace_conn_id(&self) -> u64 {
        self.trace_conn
    }
}

/// A bound TCP listener.
pub struct TcpTransportListener {
    listener: TcpListener,
    ctx: TransportCtx,
    port: u16,
}

impl TcpTransportListener {
    /// Bind on 127.0.0.1. `port == 0` picks an ephemeral port.
    pub fn bind(port: u16, ctx: TransportCtx) -> TResult<TcpTransportListener> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        let port = listener.local_addr()?.port();
        Ok(TcpTransportListener {
            listener,
            ctx,
            port,
        })
    }
}

impl Acceptor for TcpTransportListener {
    fn accept(&self) -> TResult<Box<dyn Connection>> {
        let (stream, _) = self.listener.accept()?;
        // zc-audit: allow(cheap-clone) — TransportCtx is a trio of Arc handles (meter + pool + telemetry)
        Ok(Box::new(TcpConn::new(stream, self.ctx.clone())?))
    }

    fn endpoint(&self) -> (String, u16) {
        ("127.0.0.1".to_string(), self.port)
    }
}

/// Connector for outbound TCP connections.
pub struct TcpConnector {
    /// Context (meter + pool) installed into every connection.
    pub ctx: TransportCtx,
}

impl Connector for TcpConnector {
    fn connect(&self, host: &str, port: u16) -> TResult<Box<dyn Connection>> {
        let stream = TcpStream::connect((host, port))?;
        // zc-audit: allow(cheap-clone) — TransportCtx is a trio of Arc handles (meter + pool + telemetry)
        Ok(Box::new(TcpConn::new(stream, self.ctx.clone())?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (Box<dyn Connection>, Box<dyn Connection>, TransportCtx) {
        let ctx = TransportCtx::new();
        let listener = TcpTransportListener::bind(0, ctx.clone()).unwrap();
        let (host, port) = listener.endpoint();
        let handle = std::thread::spawn(move || listener.accept().unwrap());
        let client = TcpConnector { ctx: ctx.clone() }
            .connect(&host, port)
            .unwrap();
        let server = handle.join().unwrap();
        (client, server, ctx)
    }

    #[test]
    fn control_roundtrip() {
        let (mut c, mut s, _ctx) = pair();
        c.send_control(b"over real tcp").unwrap();
        assert_eq!(s.recv_control().unwrap(), b"over real tcp");
        s.send_control(b"reply").unwrap();
        assert_eq!(c.recv_control().unwrap(), b"reply");
    }

    #[test]
    fn data_roundtrip_with_metered_crossings() {
        let (mut c, mut s, ctx) = pair();
        let n = 256 * 1024;
        let pattern: Vec<u8> = (0..n).map(|i| (i % 253) as u8).collect();
        let block = {
            let mut b = zc_buffers::AlignedBuf::with_capacity(n);
            b.extend_from_slice(&pattern);
            ZcBytes::from_aligned(b)
        };
        let before = ctx.meter.snapshot();
        c.send_data(&block).unwrap();
        let got = s.recv_data(n).unwrap();
        assert_eq!(got.as_slice(), &pattern[..]);
        assert!(got.is_page_aligned(), "deposit target is page aligned");
        let d = ctx.meter.snapshot().since(&before);
        assert_eq!(d.bytes(CopyLayer::SocketSend), n as u64);
        assert_eq!(d.bytes(CopyLayer::SocketRecv), n as u64);
    }

    #[test]
    fn interleaved_lanes_buffer_correctly() {
        let (mut c, mut s, _ctx) = pair();
        c.send_data(&ZcBytes::zeroed(5000)).unwrap();
        c.send_control(b"ctrl").unwrap();
        assert_eq!(s.recv_control().unwrap(), b"ctrl");
        assert_eq!(s.recv_data(5000).unwrap().len(), 5000);
    }

    #[test]
    fn length_mismatch_rejected() {
        let (mut c, mut s, _ctx) = pair();
        c.send_data(&ZcBytes::zeroed(10)).unwrap();
        assert!(matches!(s.recv_data(11), Err(TransportError::Protocol(_))));
    }

    #[test]
    fn close_detected() {
        let (c, mut s, _ctx) = pair();
        drop(c);
        assert_eq!(s.recv_control().unwrap_err(), TransportError::Closed);
    }

    #[test]
    fn connection_refused() {
        // Bind and immediately drop to get a (very likely) dead port.
        let dead_port = {
            let l = TcpListener::bind(("127.0.0.1", 0)).unwrap();
            l.local_addr().unwrap().port()
        };
        let r = TcpConnector {
            ctx: TransportCtx::new(),
        }
        .connect("127.0.0.1", dead_port);
        assert!(matches!(r, Err(TransportError::ConnectionRefused(_))));
    }

    #[test]
    fn empty_payloads() {
        let (mut c, mut s, _ctx) = pair();
        c.send_control(b"").unwrap();
        c.send_data(&ZcBytes::empty()).unwrap();
        assert_eq!(s.recv_control().unwrap(), b"");
        assert_eq!(s.recv_data(0).unwrap().len(), 0);
    }
}
