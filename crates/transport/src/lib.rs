//! Transports with separated control- and data-paths.
//!
//! §3.2 of the paper: decoupling synchronization (control) from data
//! transfer is the key enabler — "with prior synchronization of every
//! transfer all buffering can be omitted". Every transport here exposes
//! that separation in its interface:
//!
//! * **control messages** — small, framed byte strings (GIOP headers,
//!   handshakes). They synchronize; they never carry bulk payload.
//! * **data blocks** — page-aligned [`ZcBytes`] payloads announced in
//!   advance by a control message, so the receiver can direct them to
//!   their final destination.
//!
//! Two implementations:
//!
//! * [`sim::SimNetwork`] — an in-process network whose *kernel stack* is
//!   simulated with **real memory operations**: in [`StackMode::Copying`]
//!   mode every byte crosses the user/kernel boundary, is fragmented into
//!   MTU frames (header insertion copy) and reassembled — four real,
//!   metered copies per payload, exactly the conventional path of Figure 1.
//!   In [`StackMode::ZeroCopy`] mode payload pages are handed across by
//!   reference with a configurable *speculation* success probability; a
//!   miss falls back to the copy path, reproducing the probabilistic
//!   behaviour of speculative defragmentation \[10\].
//! * [`tcp`] — real loopback TCP via `std::net`, for end-to-end runs on a
//!   live socket (the user/kernel copies there are performed by the real
//!   kernel; we meter the `write`/`read` crossings).

pub mod frame;
pub mod sim;
pub mod stats;
pub mod tcp;

pub use frame::{Frame, FramePayload, FRAME_HEADER_BYTES, MTU_PAYLOAD};
pub use sim::{FaultPlan, FaultSide, SimConfig, SimListener, SimNetwork, StackMode};
pub use stats::{ConnStats, TransportField};
pub use tcp::{TcpConnector, TcpTransportListener};

use std::sync::Arc;

use zc_buffers::{CopyMeter, PagePool, ZcBytes};
use zc_trace::Telemetry;

/// Errors raised by transports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// The peer closed the connection (or the wire vanished).
    Closed,
    /// Underlying I/O failure (message preserved; `std::io::Error` is not
    /// `Clone`, so we keep its rendering).
    Io(String),
    /// Framing/protocol violation on the wire.
    Protocol(String),
    /// No listener at the requested address.
    ConnectionRefused(String),
    /// Address already bound.
    AddrInUse(String),
    /// A blocking receive exceeded its deadline.
    Timeout,
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Closed => write!(f, "connection closed by peer"),
            TransportError::Io(e) => write!(f, "transport I/O error: {e}"),
            TransportError::Protocol(e) => write!(f, "transport protocol violation: {e}"),
            TransportError::ConnectionRefused(a) => write!(f, "connection refused: {a}"),
            TransportError::AddrInUse(a) => write!(f, "address in use: {a}"),
            TransportError::Timeout => write!(f, "transport receive timed out"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<std::io::Error> for TransportError {
    fn from(e: std::io::Error) -> Self {
        match e.kind() {
            std::io::ErrorKind::UnexpectedEof
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::BrokenPipe
            | std::io::ErrorKind::ConnectionAborted => TransportError::Closed,
            std::io::ErrorKind::ConnectionRefused => {
                TransportError::ConnectionRefused(e.to_string())
            }
            std::io::ErrorKind::AddrInUse => TransportError::AddrInUse(e.to_string()),
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => {
                TransportError::Timeout
            }
            _ => TransportError::Io(e.to_string()),
        }
    }
}

/// Result alias for transport operations.
pub type TResult<T> = Result<T, TransportError>;

/// A bidirectional connection with separated control and data paths.
///
/// All methods take `&mut self`: a connection is owned by one party at a
/// time (the ORB serializes request/reply exchanges per connection and
/// opens additional connections for concurrency).
pub trait Connection: Send {
    /// Send one framed control message (small: headers, handshakes).
    fn send_control(&mut self, msg: &[u8]) -> TResult<()>;

    /// Receive one framed control message, blocking.
    fn recv_control(&mut self) -> TResult<Vec<u8>>;

    /// Send one bulk data block on the data path. On a zero-copy transport
    /// no payload byte is touched.
    fn send_data(&mut self, block: &ZcBytes) -> TResult<()>;

    /// Receive one bulk data block of exactly `expected_len` bytes
    /// (announced by a prior control message — the "prior synchronization"
    /// that lets the block be targeted directly to its final destination).
    fn recv_data(&mut self, expected_len: usize) -> TResult<ZcBytes>;

    /// Whether the data path can move blocks without copying.
    fn is_zero_copy(&self) -> bool;

    /// Cumulative statistics for this connection.
    fn stats(&self) -> ConnStats;

    /// Diagnostic description of the peer.
    fn peer(&self) -> String;

    /// Bound subsequent blocking receives: `Some(d)` makes `recv_control`
    /// and `recv_data` fail with [`TransportError::Timeout`] after `d`;
    /// `None` restores indefinite blocking.
    fn set_recv_timeout(&mut self, timeout: Option<std::time::Duration>) -> TResult<()>;

    /// Stable identifier correlating this connection's trace events
    /// (allocated from [`zc_trace::next_conn_id`]). `0` means the
    /// transport does not participate in tracing.
    fn trace_conn_id(&self) -> u64 {
        0
    }
}

/// Something that accepts incoming [`Connection`]s.
pub trait Acceptor: Send {
    /// Block until a peer connects.
    fn accept(&self) -> TResult<Box<dyn Connection>>;

    /// The address peers should connect to (host, port).
    fn endpoint(&self) -> (String, u16);
}

/// A factory for outbound connections, so higher layers stay transport
/// agnostic.
pub trait Connector: Send + Sync {
    /// Open a connection to `(host, port)`.
    fn connect(&self, host: &str, port: u16) -> TResult<Box<dyn Connection>>;
}

/// Shared context handed to transports at construction: where to account
/// copies and where to record trace events.
#[derive(Clone)]
pub struct TransportCtx {
    /// The copy meter all layers record into.
    pub meter: Arc<CopyMeter>,
    /// Pool that receive paths draw page-aligned deposit buffers from.
    pub pool: PagePool,
    /// Telemetry (flight recorder + metrics). Disabled by default; a
    /// disabled handle costs one boolean load per would-be event.
    pub telemetry: Arc<Telemetry>,
}

impl TransportCtx {
    /// Context with a fresh meter, a default pool and disabled telemetry.
    pub fn new() -> TransportCtx {
        TransportCtx {
            meter: CopyMeter::new_shared(),
            pool: PagePool::default_for_orb(),
            telemetry: Telemetry::disabled(),
        }
    }

    /// Context with a supplied meter, a default pool and disabled
    /// telemetry.
    pub fn with_meter(meter: Arc<CopyMeter>) -> TransportCtx {
        TransportCtx {
            meter,
            pool: PagePool::default_for_orb(),
            telemetry: Telemetry::disabled(),
        }
    }

    /// Context with a supplied meter and telemetry, and a default pool.
    pub fn with_telemetry(meter: Arc<CopyMeter>, telemetry: Arc<Telemetry>) -> TransportCtx {
        TransportCtx {
            meter,
            pool: PagePool::default_for_orb(),
            telemetry,
        }
    }

    /// The telemetry handle a per-connection stats cell should mirror
    /// into (`None` when telemetry is disabled).
    pub fn conn_mirror(&self) -> Option<Arc<Telemetry>> {
        self.telemetry.transport_mirror()
    }
}

impl Default for TransportCtx {
    fn default() -> Self {
        TransportCtx::new()
    }
}
