//! Per-connection transport statistics.
//!
//! Counters are indexed by [`TransportField`] (defined in `zc-trace`, so
//! the per-connection cells and the ORB-wide telemetry mirror share one
//! field vocabulary). When the owning context carries enabled telemetry,
//! every increment is mirrored into its [`zc_trace::TransportCounters`] in
//! the same call — totals then survive connection teardown and merge across
//! connections. With telemetry disabled the mirror is `None` and the cost
//! is exactly one relaxed `fetch_add`, as before.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use zc_trace::Telemetry;
pub use zc_trace::TransportField;

/// Point-in-time statistics snapshot for one connection endpoint.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ConnStats {
    /// Control messages sent.
    pub control_sent: u64,
    /// Control messages received.
    pub control_recv: u64,
    /// Data blocks sent.
    pub data_blocks_sent: u64,
    /// Data blocks received.
    pub data_blocks_recv: u64,
    /// Payload bytes sent (control + data).
    pub bytes_sent: u64,
    /// Payload bytes received (control + data).
    pub bytes_recv: u64,
    /// Frames put on the wire by this endpoint.
    pub frames_sent: u64,
    /// Wire bytes (headers + payload) put on the wire by this endpoint.
    pub wire_bytes_sent: u64,
    /// Wire bytes (headers + payload) taken off the wire by this endpoint.
    pub wire_bytes_recv: u64,
    /// Zero-copy receive speculations that landed (block reassembled in
    /// place, no copy).
    pub spec_hits: u64,
    /// Speculations that missed (fallback copy performed).
    pub spec_misses: u64,
}

impl From<ConnStats> for zc_trace::TransportTotals {
    fn from(s: ConnStats) -> zc_trace::TransportTotals {
        zc_trace::TransportTotals {
            control_sent: s.control_sent,
            control_recv: s.control_recv,
            data_blocks_sent: s.data_blocks_sent,
            data_blocks_recv: s.data_blocks_recv,
            bytes_sent: s.bytes_sent,
            bytes_recv: s.bytes_recv,
            frames_sent: s.frames_sent,
            wire_bytes_sent: s.wire_bytes_sent,
            wire_bytes_recv: s.wire_bytes_recv,
            spec_hits: s.spec_hits,
            spec_misses: s.spec_misses,
        }
    }
}

/// Shared mutable counters behind a [`ConnStats`] snapshot.
#[derive(Debug, Default)]
pub struct StatsCell {
    cells: [AtomicU64; TransportField::COUNT],
    mirror: Option<Arc<Telemetry>>,
}

impl StatsCell {
    /// Fresh shared counters without a telemetry mirror.
    pub fn new_shared() -> Arc<StatsCell> {
        StatsCell::with_telemetry(None)
    }

    /// Fresh shared counters, mirroring into `mirror`'s transport totals
    /// when `Some`.
    pub fn with_telemetry(mirror: Option<Arc<Telemetry>>) -> Arc<StatsCell> {
        Arc::new(StatsCell {
            cells: Default::default(),
            mirror,
        })
    }

    pub(crate) fn add(&self, field: TransportField, n: u64) {
        // `cells` is indexed by the enum discriminant, which is always in
        // range; the clamp makes the bound local so a future enum/array
        // mismatch degrades to miscounting instead of a panic.
        let idx = (field as usize).min(TransportField::COUNT - 1);
        self.cells[idx].fetch_add(n, Ordering::Relaxed);
        if let Some(t) = &self.mirror {
            // Mirrors into the ORB-wide totals only — this runs per frame,
            // so it must stay one relaxed add; the byte-rate windows are
            // ticked per message by the GIOP layer. The mirror handle only
            // exists when telemetry is enabled, so the disabled-path cost
            // is unchanged: one relaxed fetch_add and a None check.
            t.mirror_transport(field, n);
        }
    }

    /// Capture a snapshot.
    pub fn snapshot(&self) -> ConnStats {
        let get = |f: TransportField| self.cells[f as usize].load(Ordering::Relaxed);
        ConnStats {
            control_sent: get(TransportField::ControlSent),
            control_recv: get(TransportField::ControlRecv),
            data_blocks_sent: get(TransportField::DataBlocksSent),
            data_blocks_recv: get(TransportField::DataBlocksRecv),
            bytes_sent: get(TransportField::BytesSent),
            bytes_recv: get(TransportField::BytesRecv),
            frames_sent: get(TransportField::FramesSent),
            wire_bytes_sent: get(TransportField::WireBytesSent),
            wire_bytes_recv: get(TransportField::WireBytesRecv),
            spec_hits: get(TransportField::SpecHits),
            spec_misses: get(TransportField::SpecMisses),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_adds() {
        let c = StatsCell::new_shared();
        c.add(TransportField::ControlSent, 2);
        c.add(TransportField::BytesSent, 100);
        c.add(TransportField::SpecHits, 1);
        c.add(TransportField::WireBytesRecv, 77);
        let s = c.snapshot();
        assert_eq!(s.control_sent, 2);
        assert_eq!(s.bytes_sent, 100);
        assert_eq!(s.spec_hits, 1);
        assert_eq!(s.spec_misses, 0);
        assert_eq!(s.wire_bytes_recv, 77);
    }

    #[test]
    fn mirror_receives_increments() {
        let tele = Telemetry::with_capacity(8);
        let c = StatsCell::with_telemetry(tele.transport_mirror());
        c.add(TransportField::WireBytesSent, 500);
        c.add(TransportField::SpecMisses, 2);
        let totals = tele.transport().snapshot();
        assert_eq!(totals.wire_bytes_sent, 500);
        assert_eq!(totals.spec_misses, 2);
        // The local cell counts too.
        assert_eq!(c.snapshot().wire_bytes_sent, 500);
    }

    #[test]
    fn disabled_telemetry_installs_no_mirror() {
        let tele = Telemetry::disabled();
        let c = StatsCell::with_telemetry(tele.transport_mirror());
        c.add(TransportField::FramesSent, 3);
        assert_eq!(tele.transport().snapshot().frames_sent, 0);
        assert_eq!(c.snapshot().frames_sent, 3);
    }

    #[test]
    fn conn_stats_convert_to_totals() {
        let c = StatsCell::new_shared();
        c.add(TransportField::DataBlocksRecv, 4);
        c.add(TransportField::WireBytesRecv, 4096);
        let t: zc_trace::TransportTotals = c.snapshot().into();
        assert_eq!(t.data_blocks_recv, 4);
        assert_eq!(t.wire_bytes_recv, 4096);
    }
}
