//! Per-connection transport statistics.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Point-in-time statistics snapshot for one connection endpoint.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ConnStats {
    /// Control messages sent.
    pub control_sent: u64,
    /// Control messages received.
    pub control_recv: u64,
    /// Data blocks sent.
    pub data_blocks_sent: u64,
    /// Data blocks received.
    pub data_blocks_recv: u64,
    /// Payload bytes sent (control + data).
    pub bytes_sent: u64,
    /// Payload bytes received (control + data).
    pub bytes_recv: u64,
    /// Frames put on the wire by this endpoint.
    pub frames_sent: u64,
    /// Wire bytes (headers + payload) put on the wire by this endpoint.
    pub wire_bytes_sent: u64,
    /// Zero-copy receive speculations that landed (block reassembled in
    /// place, no copy).
    pub spec_hits: u64,
    /// Speculations that missed (fallback copy performed).
    pub spec_misses: u64,
}

/// Shared mutable counters behind a [`ConnStats`] snapshot.
#[derive(Debug, Default)]
pub struct StatsCell {
    pub(crate) control_sent: AtomicU64,
    pub(crate) control_recv: AtomicU64,
    pub(crate) data_blocks_sent: AtomicU64,
    pub(crate) data_blocks_recv: AtomicU64,
    pub(crate) bytes_sent: AtomicU64,
    pub(crate) bytes_recv: AtomicU64,
    pub(crate) frames_sent: AtomicU64,
    pub(crate) wire_bytes_sent: AtomicU64,
    pub(crate) spec_hits: AtomicU64,
    pub(crate) spec_misses: AtomicU64,
}

impl StatsCell {
    /// Fresh shared counters.
    pub fn new_shared() -> Arc<StatsCell> {
        Arc::new(StatsCell::default())
    }

    pub(crate) fn add(&self, field: &AtomicU64, n: u64) {
        field.fetch_add(n, Ordering::Relaxed);
    }

    /// Capture a snapshot.
    pub fn snapshot(&self) -> ConnStats {
        ConnStats {
            control_sent: self.control_sent.load(Ordering::Relaxed),
            control_recv: self.control_recv.load(Ordering::Relaxed),
            data_blocks_sent: self.data_blocks_sent.load(Ordering::Relaxed),
            data_blocks_recv: self.data_blocks_recv.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            bytes_recv: self.bytes_recv.load(Ordering::Relaxed),
            frames_sent: self.frames_sent.load(Ordering::Relaxed),
            wire_bytes_sent: self.wire_bytes_sent.load(Ordering::Relaxed),
            spec_hits: self.spec_hits.load(Ordering::Relaxed),
            spec_misses: self.spec_misses.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_adds() {
        let c = StatsCell::new_shared();
        c.add(&c.control_sent, 2);
        c.add(&c.bytes_sent, 100);
        c.add(&c.spec_hits, 1);
        let s = c.snapshot();
        assert_eq!(s.control_sent, 2);
        assert_eq!(s.bytes_sent, 100);
        assert_eq!(s.spec_hits, 1);
        assert_eq!(s.spec_misses, 0);
    }
}
