//! The in-process simulated network stack.
//!
//! [`SimNetwork`] is a process-local "cluster interconnect": listeners bind
//! ports, connectors dial them, and each connection is a pair of
//! frame-carrying channels (the wire). What makes it a *simulation of the
//! paper's kernel stacks* — rather than a mere message queue — is that the
//! per-layer work of the two stack configurations is **actually performed**
//! on real memory, through the copy meter:
//!
//! * [`StackMode::Copying`] — the conventional path of Figure 1. Sending a
//!   block really copies it user→kernel ([`CopyLayer::SocketSend`]), really
//!   fragments it into MTU frames with a header-insertion copy
//!   ([`CopyLayer::KernelFrag`]); receiving really reassembles fragments
//!   into a kernel buffer ([`CopyLayer::KernelDefrag`]) and really copies
//!   kernel→user ([`CopyLayer::SocketRecv`]). Four full traversals of the
//!   payload, exactly the per-byte overhead the paper attacks.
//!
//! * [`StackMode::ZeroCopy`] — the speculative-defragmentation path \[10\].
//!   Payload pages cross the wire *by reference* (page-granular fragments
//!   of the sender's buffer). The receiver **speculates** that fragments
//!   landed in place; with probability `zc_success_prob` the speculation
//!   holds and the block is rejoined without touching a byte
//!   ([`zc_buffers::ZcBytes::join_contiguous`]). A miss falls back to the
//!   conventional copy ([`CopyLayer::DepositFallback`]) — the probabilistic
//!   fallback of the real driver.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use zc_buffers::{CopyLayer, ZcBytes, PAGE_SIZE};

use zc_trace::{EventKind, TraceLayer};

use crate::frame::{Frame, FramePayload, Lane, MTU_PAYLOAD};
use crate::stats::{ConnStats, StatsCell, TransportField};
use crate::{Acceptor, Connection, TResult, TransportCtx, TransportError};

/// Which kernel stack the simulated network runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StackMode {
    /// Conventional stack: four metered copies per payload traversal.
    Copying,
    /// Zero-copy stack with speculative defragmentation.
    ZeroCopy,
}

/// Configuration of a simulated network.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Stack mode for every connection on this network.
    pub mode: StackMode,
    /// Payload bytes per frame in copying mode (standard Ethernet: 1460).
    pub mtu_payload: usize,
    /// Probability that a zero-copy receive speculation succeeds.
    pub zc_success_prob: f64,
    /// RNG seed for speculation outcomes (deterministic experiments).
    pub seed: u64,
}

impl SimConfig {
    /// Conventional copying stack at standard MTU.
    pub fn copying() -> SimConfig {
        SimConfig {
            mode: StackMode::Copying,
            mtu_payload: MTU_PAYLOAD,
            zc_success_prob: 1.0,
            // zc-audit: allow(wire-const) — deterministic RNG seed; "ZC" digits are branding, not a protocol id
            seed: 0x5A43_0001,
        }
    }

    /// Zero-copy stack with perfectly successful speculation (the
    /// homogeneous-cluster common case the paper optimizes for).
    pub fn zero_copy() -> SimConfig {
        SimConfig {
            mode: StackMode::ZeroCopy,
            mtu_payload: MTU_PAYLOAD,
            zc_success_prob: 1.0,
            // zc-audit: allow(wire-const) — deterministic RNG seed; "ZC" digits are branding, not a protocol id
            seed: 0x5A43_0002,
        }
    }

    /// Zero-copy stack with the given speculation success probability
    /// (ablation A3).
    pub fn zero_copy_with_speculation(p: f64) -> SimConfig {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        SimConfig {
            zc_success_prob: p,
            ..SimConfig::zero_copy()
        }
    }
}

/// Which endpoints of the network a [`FaultPlan`] applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultSide {
    /// Every endpoint, connecting or accepting.
    #[default]
    Both,
    /// Only endpoints created by [`SimNetwork::connect`] (client halves).
    Client,
    /// Only endpoints handed out by accept (server halves).
    Server,
}

/// A deterministic, seeded fault-injection plan.
///
/// Installed network-wide with [`SimNetwork::inject_faults`]; live
/// connections pick the new plan up at their next send or receive. Frame
/// indices (`cut_after_frames`, `corrupt_frame`, …) count *per connection*
/// from the moment that connection first sees the plan, so "cut after 0
/// frames" means "the very next frame this endpoint sends".
///
/// The deterministic single-frame faults (cut / corrupt / truncate /
/// delay) share a network-wide budget of [`FaultPlan::max_trips`] firings
/// per injected plan — so a plan that kills one connection does not also
/// kill the replacement connection a recovering client dials. The
/// probabilistic faults (`drop_prob`, `spec_miss_prob`) and
/// `refuse_connects` stay live until the plan is replaced.
///
/// A frame drop is modeled as the wire dying (the sender's channel closes
/// and the peer observes [`TransportError::Closed`] after draining): a
/// silently missing fragment would leave the peer blocked forever inside a
/// block, which is exactly what a real TCP connection turns into a reset
/// once retransmission gives up.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    /// Which endpoints the plan applies to.
    pub side: FaultSide,
    /// Sever the wire once an endpoint has sent this many further frames.
    pub cut_after_frames: Option<u64>,
    /// Flip bits in the payload of the Nth frame sent.
    pub corrupt_frame: Option<u64>,
    /// Truncate the payload of the Nth frame sent (announced block length
    /// is left intact, so the receiver sees a short fragment stream).
    pub truncate_frame: Option<u64>,
    /// Hold the Nth frame and deliver it after its successor (reordering).
    pub delay_frame: Option<u64>,
    /// Probability that any sent frame kills the connection instead.
    pub drop_prob: f64,
    /// Probability that a zero-copy receive speculation is forced to miss.
    pub spec_miss_prob: f64,
    /// Refuse new [`SimNetwork::connect`] attempts.
    pub refuse_connects: bool,
    /// Budget for the deterministic single-frame faults above.
    pub max_trips: u32,
}

impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan {
            side: FaultSide::Both,
            cut_after_frames: None,
            corrupt_frame: None,
            truncate_frame: None,
            delay_frame: None,
            drop_prob: 0.0,
            spec_miss_prob: 0.0,
            refuse_connects: false,
            max_trips: 1,
        }
    }
}

impl FaultPlan {
    /// Plan that severs the wire after `n` further frames.
    pub fn cut_after(n: u64) -> FaultPlan {
        FaultPlan {
            cut_after_frames: Some(n),
            ..FaultPlan::default()
        }
    }

    /// Plan that forces every zero-copy receive speculation to miss with
    /// probability `p`.
    pub fn spec_miss(p: f64) -> FaultPlan {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        FaultPlan {
            spec_miss_prob: p,
            ..FaultPlan::default()
        }
    }

    /// Plan that kills connections with per-frame probability `p`.
    pub fn drop(p: f64) -> FaultPlan {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        FaultPlan {
            drop_prob: p,
            ..FaultPlan::default()
        }
    }

    /// Plan that refuses all new connection attempts.
    pub fn refuse() -> FaultPlan {
        FaultPlan {
            refuse_connects: true,
            ..FaultPlan::default()
        }
    }

    /// Restrict the plan to one side of the network.
    pub fn on(mut self, side: FaultSide) -> FaultPlan {
        self.side = side;
        self
    }

    fn applies_to(&self, is_client: bool) -> bool {
        match self.side {
            FaultSide::Both => true,
            FaultSide::Client => is_client,
            FaultSide::Server => !is_client,
        }
    }
}

/// Live fault state shared by every connection of one [`SimNetwork`].
#[derive(Default)]
struct FaultState {
    plan: Mutex<FaultPlan>,
    generation: AtomicU64,
    trips: AtomicU64,
}

type PendingConn = Box<SimConn>;

struct NetInner {
    listeners: Mutex<HashMap<u16, Sender<PendingConn>>>,
    next_port: AtomicU64,
    next_conn_id: AtomicU64,
    config: SimConfig,
    faults: Arc<FaultState>,
}

/// A process-local simulated network. Clone handles freely; all clones
/// address the same port space.
#[derive(Clone)]
pub struct SimNetwork {
    inner: Arc<NetInner>,
}

impl SimNetwork {
    /// Create a network running the given stack configuration.
    pub fn new(config: SimConfig) -> SimNetwork {
        SimNetwork {
            inner: Arc::new(NetInner {
                listeners: Mutex::new(HashMap::new()),
                next_port: AtomicU64::new(40_000),
                next_conn_id: AtomicU64::new(1),
                config,
                faults: Arc::new(FaultState::default()),
            }),
        }
    }

    /// The network's stack configuration.
    pub fn config(&self) -> SimConfig {
        self.inner.config
    }

    /// Install `plan` as the network's live fault plan. Takes effect for
    /// in-flight connections at their next send or receive; the
    /// deterministic single-frame faults get a fresh trip budget.
    pub fn inject_faults(&self, plan: FaultPlan) {
        let f = &self.inner.faults;
        *f.plan.lock() = plan;
        f.trips.store(0, Ordering::Release);
        f.generation.fetch_add(1, Ordering::Release);
    }

    /// Remove every injected fault (equivalent to injecting the default
    /// all-quiet plan).
    pub fn clear_faults(&self) {
        self.inject_faults(FaultPlan::default());
    }

    /// How many deterministic single-frame faults the current plan has
    /// fired so far.
    pub fn faults_tripped(&self) -> u64 {
        self.inner
            .faults
            .trips
            .load(Ordering::Acquire)
            .min(self.inner.faults.plan.lock().max_trips as u64)
    }

    /// Bind a listener. `port == 0` allocates an ephemeral port.
    pub fn listen(&self, port: u16, ctx: TransportCtx) -> TResult<SimListener> {
        let port = if port == 0 {
            self.inner.next_port.fetch_add(1, Ordering::Relaxed) as u16
        } else {
            port
        };
        let (tx, rx) = unbounded();
        {
            let mut map = self.inner.listeners.lock();
            if map.contains_key(&port) {
                // zc-audit: allow(control-plane) — endpoint name for the error
                return Err(TransportError::AddrInUse(format!("sim:{port}")));
            }
            map.insert(port, tx);
        }
        Ok(SimListener {
            // zc-audit: allow(cheap-clone) — SimNet is an Arc handle over shared state
            network: self.clone(),
            port,
            rx,
            ctx,
        })
    }

    /// Dial a listener on this network.
    pub fn connect(&self, port: u16, ctx: TransportCtx) -> TResult<Box<dyn Connection>> {
        {
            let plan = *self.inner.faults.plan.lock();
            if plan.refuse_connects && plan.applies_to(true) {
                // zc-audit: allow(control-plane) — endpoint name for the error
                return Err(TransportError::ConnectionRefused(format!(
                    "sim:{port} (injected fault: refusing connects)"
                )));
            }
        }
        let listener_tx = {
            let map = self.inner.listeners.lock();
            map.get(&port).cloned()
        }
        // zc-audit: allow(control-plane) — endpoint name for the error
        .ok_or_else(|| TransportError::ConnectionRefused(format!("sim:{port}")))?;

        let conn_id = self.inner.next_conn_id.fetch_add(1, Ordering::Relaxed);
        let cfg = self.inner.config;
        // Two unidirectional frame channels form the full-duplex wire.
        let (c2s_tx, c2s_rx) = unbounded::<Frame>();
        let (s2c_tx, s2c_rx) = unbounded::<Frame>();

        let client = SimConn::new(
            // zc-audit: allow(control-plane) — peer name, built once per connection
            format!("sim:{port}#c{conn_id}"),
            cfg,
            ctx,
            c2s_tx,
            s2c_rx,
            conn_id * 2,
            true,
            Arc::clone(&self.inner.faults),
        );
        // Server side gets its context from the listener at accept time; a
        // placeholder ctx here would double-count, so the listener injects
        // its own ctx into the pending half.
        let server_half = PendingHalf {
            // zc-audit: allow(control-plane) — peer name, built once per connection
            peer: format!("sim:{port}#s{conn_id}"),
            cfg,
            tx: s2c_tx,
            rx: c2s_rx,
            seed_salt: conn_id * 2 + 1,
            faults: Arc::clone(&self.inner.faults),
        };
        listener_tx
            .send(Box::new(SimConn::from_half(
                server_half,
                TransportCtx::new(),
            )))
            // zc-audit: allow(control-plane) — endpoint name for the error
            .map_err(|_| TransportError::ConnectionRefused(format!("sim:{port}")))?;
        // NOTE: from_half above installs a throwaway ctx; the listener
        // replaces it in accept(). See SimListener::accept.
        Ok(Box::new(client))
    }

    fn unlisten(&self, port: u16) {
        self.inner.listeners.lock().remove(&port);
    }
}

impl std::fmt::Debug for SimNetwork {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SimNetwork(mode: {:?}, listeners: {})",
            self.inner.config.mode,
            self.inner.listeners.lock().len()
        )
    }
}

struct PendingHalf {
    peer: String,
    cfg: SimConfig,
    tx: Sender<Frame>,
    rx: Receiver<Frame>,
    seed_salt: u64,
    faults: Arc<FaultState>,
}

/// A bound simulated listener.
pub struct SimListener {
    network: SimNetwork,
    port: u16,
    rx: Receiver<PendingConn>,
    ctx: TransportCtx,
}

impl Acceptor for SimListener {
    fn accept(&self) -> TResult<Box<dyn Connection>> {
        let mut conn = self.rx.recv().map_err(|_| TransportError::Closed)?;
        // Install the listener's context (meter + pool + telemetry) into
        // the accepted half so server-side copies land on the server's
        // meter.
        // zc-audit: allow(cheap-clone) — TransportCtx is a trio of Arc handles (meter + pool + telemetry)
        conn.ctx = self.ctx.clone();
        // The pending half was built with a throwaway ctx, so its stats
        // cell mirrors nothing; rebind it to the real telemetry. Nothing
        // has been counted yet (the handshake happens after accept).
        conn.rebind_telemetry();
        Ok(conn)
    }

    fn endpoint(&self) -> (String, u16) {
        ("sim".to_string(), self.port)
    }
}

impl Drop for SimListener {
    fn drop(&mut self) {
        self.network.unlisten(self.port);
    }
}

/// Hard cap on the announced length of one simulated block: a corrupt
/// total must error out, never size an allocation.
pub const MAX_SIM_BLOCK_BYTES: u64 = 1 << 30;

/// Re-validate a wire-announced block length at the allocation site.
/// `recv_block_frames` checks the first fragment's total too, but every
/// allocation clamps locally so no refactor of the call path can let an
/// unchecked announcement size a buffer (wire-taint invariant).
fn checked_block_len(total: u64) -> TResult<usize> {
    if total > MAX_SIM_BLOCK_BYTES {
        // zc-audit: allow(control-plane) — protocol error diagnostic
        return Err(TransportError::Protocol(format!(
            "block announces {total} bytes, above the {MAX_SIM_BLOCK_BYTES} byte cap"
        )));
    }
    Ok(total as usize)
}

/// Bounds-check one fragment's deposit window (`offset .. offset + len`)
/// within a block of `total` bytes, erroring instead of panicking on a
/// hostile offset: overflow and overrun both become protocol errors.
fn checked_span(offset: u64, len: usize, total: usize) -> TResult<std::ops::Range<usize>> {
    usize::try_from(offset)
        .ok()
        .and_then(|off| off.checked_add(len).map(|end| off..end))
        .filter(|span| span.end <= total)
        .ok_or_else(|| {
            // zc-audit: allow(control-plane) — protocol error diagnostic
            TransportError::Protocol(format!(
                "fragment window {offset}+{len} outside its block of {total} bytes"
            ))
        })
}

/// One endpoint of a simulated connection.
pub struct SimConn {
    peer: String,
    cfg: SimConfig,
    ctx: TransportCtx,
    /// `None` once the outgoing wire was severed by a fault.
    tx: Option<Sender<Frame>>,
    rx: Receiver<Frame>,
    /// Frames received for the other lane while waiting on one lane.
    pending_control: VecDeque<Frame>,
    pending_data: VecDeque<Frame>,
    next_block_id: u64,
    rng: StdRng,
    stats: Arc<StatsCell>,
    recv_timeout: Option<std::time::Duration>,
    trace_conn: u64,
    is_client: bool,
    faults: Arc<FaultState>,
    active_plan: FaultPlan,
    fault_gen: u64,
    /// Frames sent since this endpoint picked up the current plan.
    frames_since_fault: u64,
    wire_cut: bool,
    /// A frame held back by `FaultPlan::delay_frame`, delivered after its
    /// successor.
    delayed: Option<Frame>,
    /// Separate RNG stream for fault draws so injecting faults never
    /// perturbs the speculation outcomes of `rng`.
    fault_rng: StdRng,
}

impl SimConn {
    #[allow(clippy::too_many_arguments)]
    fn new(
        peer: String,
        cfg: SimConfig,
        ctx: TransportCtx,
        tx: Sender<Frame>,
        rx: Receiver<Frame>,
        seed_salt: u64,
        is_client: bool,
        faults: Arc<FaultState>,
    ) -> SimConn {
        let stats = StatsCell::with_telemetry(ctx.conn_mirror());
        let fault_gen = faults.generation.load(Ordering::Acquire);
        let active_plan = *faults.plan.lock();
        SimConn {
            peer,
            cfg,
            ctx,
            tx: Some(tx),
            rx,
            pending_control: VecDeque::new(),
            pending_data: VecDeque::new(),
            next_block_id: 0,
            rng: StdRng::seed_from_u64(cfg.seed ^ seed_salt.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            stats,
            recv_timeout: None,
            trace_conn: zc_trace::next_conn_id(),
            is_client,
            faults,
            active_plan,
            fault_gen,
            frames_since_fault: 0,
            wire_cut: false,
            delayed: None,
            fault_rng: StdRng::seed_from_u64(
                cfg.seed ^ seed_salt.rotate_left(17) ^ 0xFA17_FA17_FA17_FA17,
            ),
        }
    }

    fn from_half(h: PendingHalf, ctx: TransportCtx) -> SimConn {
        SimConn::new(h.peer, h.cfg, ctx, h.tx, h.rx, h.seed_salt, false, h.faults)
    }

    /// Pick up a newly injected plan; frame counting restarts with it.
    fn refresh_fault_plan(&mut self) {
        let gen = self.faults.generation.load(Ordering::Acquire);
        if gen != self.fault_gen {
            self.fault_gen = gen;
            self.active_plan = *self.faults.plan.lock();
            self.frames_since_fault = 0;
        }
    }

    /// Consume one shot of the plan's deterministic-fault budget.
    fn take_trip(&self) -> bool {
        let max = self.active_plan.max_trips as u64;
        self.faults.trips.fetch_add(1, Ordering::AcqRel) < max
    }

    /// Sever this endpoint's outgoing wire: the peer drains what was
    /// already delivered, then observes [`TransportError::Closed`].
    fn cut(&mut self) {
        self.wire_cut = true;
        self.tx = None;
        self.delayed = None;
    }

    /// Rebuild the stats cell against the (possibly replaced) context's
    /// telemetry. Only valid while all counters are still zero.
    fn rebind_telemetry(&mut self) {
        self.stats = StatsCell::with_telemetry(self.ctx.conn_mirror());
    }

    fn alloc_block_id(&mut self) -> u64 {
        let id = self.next_block_id;
        self.next_block_id += 1;
        id
    }

    /// Put one frame on the wire, running it through the live fault plan
    /// first.
    fn send_frame(&mut self, frame: Frame) -> TResult<()> {
        if self.wire_cut {
            return Err(TransportError::Closed);
        }
        self.refresh_fault_plan();
        let plan = self.active_plan;
        if plan.applies_to(self.is_client) {
            let n = self.frames_since_fault;
            self.frames_since_fault += 1;
            if (plan.cut_after_frames.is_some_and(|k| n >= k) && self.take_trip())
                || (plan.drop_prob > 0.0 && self.fault_rng.gen::<f64>() < plan.drop_prob)
            {
                self.cut();
                return Err(TransportError::Closed);
            }
            let mut frame = frame;
            if plan.corrupt_frame == Some(n) && self.take_trip() {
                Self::corrupt_payload(&mut frame);
            }
            if plan.truncate_frame == Some(n) && self.take_trip() {
                Self::truncate_payload(&mut frame);
            }
            if plan.delay_frame == Some(n) && self.take_trip() {
                self.delayed = Some(frame);
                return Ok(());
            }
            self.put_on_wire(frame)?;
        } else {
            self.put_on_wire(frame)?;
        }
        if let Some(held) = self.delayed.take() {
            self.put_on_wire(held)?;
        }
        Ok(())
    }

    fn put_on_wire(&mut self, frame: Frame) -> TResult<()> {
        self.stats.add(TransportField::FramesSent, 1);
        self.stats
            .add(TransportField::WireBytesSent, frame.wire_bytes() as u64);
        match &self.tx {
            Some(tx) => tx.send(frame).map_err(|_| TransportError::Closed),
            None => Err(TransportError::Closed),
        }
    }

    /// Flip bits in the frame payload. The payload may reference the
    /// sender's live pages, so corruption first detaches the frame into a
    /// private buffer — the injector must never scribble on application
    /// memory.
    fn corrupt_payload(frame: &mut Frame) {
        // zc-audit: allow(copy) — fault injector detaches the frame before flipping bits; wire damage on the KernelFrag-sized fragment, not a data-path copy
        let mut bytes = frame.payload.as_slice().to_vec();
        if let Some(b) = bytes.first_mut() {
            *b ^= 0xFF;
        }
        for b in bytes.iter_mut().skip(1).step_by(97) {
            *b ^= 0xA5;
        }
        frame.payload = FramePayload::Copied(bytes);
    }

    /// Shorten the frame payload without touching the announced block
    /// length: downstream sees a fragment stream that can never complete.
    fn truncate_payload(frame: &mut Frame) {
        let len = frame.payload.len();
        if len == 0 {
            return;
        }
        let keep = len / 2;
        frame.payload = match &frame.payload {
            FramePayload::Referenced(z) => FramePayload::Referenced(z.slice(0..keep)),
            // zc-audit: allow(copy) — injected wire truncation rebuilds the shortened KernelFrag-sized fragment, fault path only
            FramePayload::Copied(v) => FramePayload::Copied(v[..keep].to_vec()),
        };
    }

    /// Trace-clock stamp for frames about to go on the wire; `0` (untraced)
    /// when telemetry is disabled so the hot path never reads the clock.
    fn wire_stamp(&self) -> u64 {
        if self.ctx.telemetry.is_enabled() {
            zc_trace::now_ns()
        } else {
            0
        }
    }

    /// The conventional send path: user→kernel copy, then fragmentation
    /// with per-frame copies.
    fn send_bytes_copying(&mut self, lane: Lane, bytes: &[u8]) -> TResult<()> {
        let meter = Arc::clone(&self.ctx.meter);
        // write(): cross the user/kernel boundary into the socket page pool.
        let mut kernel_buf = self.ctx.pool.acquire(bytes.len().max(1));
        kernel_buf.set_len(bytes.len());
        meter.copy(CopyLayer::SocketSend, kernel_buf.as_mut_slice(), bytes);

        let block_id = self.alloc_block_id();
        let total_len = bytes.len() as u64;
        let mtu = self.cfg.mtu_payload;
        let sent_ns = self.wire_stamp();
        if bytes.is_empty() {
            return self.send_frame(Frame {
                lane,
                block_id,
                offset: 0,
                total_len: 0,
                sent_ns,
                payload: FramePayload::Copied(Vec::new()),
            });
        }
        let mut offset = 0usize;
        while offset < bytes.len() {
            let end = (offset + mtu).min(bytes.len());
            // Driver fragmentation: header insertion forces a copy of the
            // fragment into the frame.
            let mut frag = vec![0u8; end - offset];
            meter.copy(
                CopyLayer::KernelFrag,
                &mut frag,
                &kernel_buf.as_slice()[offset..end],
            );
            self.send_frame(Frame {
                lane,
                block_id,
                offset: offset as u64,
                total_len,
                sent_ns,
                payload: FramePayload::Copied(frag),
            })?;
            offset = end;
        }
        Ok(())
    }

    /// The zero-copy send path for data blocks: page-granular referenced
    /// fragments, no byte touched.
    fn send_block_zero_copy(&mut self, block: &ZcBytes) -> TResult<()> {
        let block_id = self.alloc_block_id();
        let total_len = block.len() as u64;
        let sent_ns = self.wire_stamp();
        if block.is_empty() {
            return self.send_frame(Frame {
                lane: Lane::Data,
                block_id,
                offset: 0,
                total_len: 0,
                sent_ns,
                payload: FramePayload::Copied(Vec::new()),
            });
        }
        let mut offset = 0u64;
        for chunk in block.chunks(PAGE_SIZE) {
            let len = chunk.len() as u64;
            self.send_frame(Frame {
                lane: Lane::Data,
                block_id,
                offset,
                total_len,
                sent_ns,
                payload: FramePayload::Referenced(chunk),
            })?;
            offset += len;
        }
        Ok(())
    }

    /// Pull the next frame belonging to `lane`, buffering frames of the
    /// other lane (control and data may interleave on the wire).
    fn next_frame(&mut self, lane: Lane) -> TResult<Frame> {
        let pending = match lane {
            Lane::Control => &mut self.pending_control,
            Lane::Data => &mut self.pending_data,
        };
        if let Some(f) = pending.pop_front() {
            return Ok(f);
        }
        loop {
            let f = match self.recv_timeout {
                None => self.rx.recv().map_err(|_| TransportError::Closed)?,
                Some(d) => self.rx.recv_timeout(d).map_err(|e| match e {
                    crossbeam::channel::RecvTimeoutError::Timeout => TransportError::Timeout,
                    crossbeam::channel::RecvTimeoutError::Disconnected => TransportError::Closed,
                })?,
            };
            // Wire bytes are accounted as they leave the wire, whichever
            // lane they belong to.
            self.stats
                .add(TransportField::WireBytesRecv, f.wire_bytes() as u64);
            if f.lane == lane {
                return Ok(f);
            }
            match f.lane {
                Lane::Control => self.pending_control.push_back(f),
                Lane::Data => self.pending_data.push_back(f),
            }
        }
    }

    /// Collect all fragments of the next block on `lane`.
    fn recv_block_frames(&mut self, lane: Lane) -> TResult<Vec<Frame>> {
        let first = self.next_frame(lane)?;
        let block_id = first.block_id;
        let total = first.total_len;
        if total > MAX_SIM_BLOCK_BYTES {
            // zc-audit: allow(control-plane) — protocol error diagnostic
            return Err(TransportError::Protocol(format!(
                "block {block_id} announces {total} bytes, above the {MAX_SIM_BLOCK_BYTES} byte cap"
            )));
        }
        let mut got = first.payload.len() as u64;
        let mut frames = vec![first];
        while got < total {
            let f = self.next_frame(lane)?;
            if f.block_id != block_id {
                // zc-audit: allow(control-plane) — protocol error diagnostic
                return Err(TransportError::Protocol(format!(
                    "interleaved fragments: expected block {block_id}, got {}",
                    f.block_id
                )));
            }
            if f.payload.is_empty() {
                // Progress guarantee: a peer streaming empty continuation
                // fragments must not pin the receiver in this loop (and
                // grow `frames`) forever.
                // zc-audit: allow(control-plane) — protocol error diagnostic
                return Err(TransportError::Protocol(format!(
                    "zero-length continuation fragment in block {block_id}"
                )));
            }
            got = got.saturating_add(f.payload.len() as u64);
            frames.push(f);
        }
        if got != total {
            // zc-audit: allow(control-plane) — protocol error diagnostic
            return Err(TransportError::Protocol(format!(
                "fragment overrun: block {block_id} announced {total}, got {got}"
            )));
        }
        Ok(frames)
    }

    /// The conventional receive path: defragment into a kernel buffer, then
    /// copy kernel→user.
    fn reassemble_copying(&mut self, frames: &[Frame]) -> TResult<ZcBytes> {
        let meter = Arc::clone(&self.ctx.meter);
        let total = checked_block_len(frames.first().map_or(0, |f| f.total_len))?;
        // Defragmentation: fragments are copied off the receive ring into a
        // contiguous kernel buffer.
        let mut kernel_buf = vec![0u8; total];
        for f in frames {
            let payload = f.payload.as_slice();
            let span = checked_span(f.offset, payload.len(), total)?;
            meter.copy(CopyLayer::KernelDefrag, &mut kernel_buf[span], payload);
        }
        // read(): kernel→user copy into an aligned application buffer.
        let mut user_buf = self.ctx.pool.acquire(total.max(1));
        user_buf.set_len(total);
        meter.copy(CopyLayer::SocketRecv, user_buf.as_mut_slice(), &kernel_buf);
        Ok(user_buf.freeze())
    }

    /// The zero-copy receive path: speculate that fragments landed in place.
    fn reassemble_zero_copy(&mut self, frames: Vec<Frame>) -> TResult<ZcBytes> {
        let total = checked_block_len(frames.first().map_or(0, |f| f.total_len))?;
        if total == 0 {
            return Ok(ZcBytes::empty());
        }
        self.refresh_fault_plan();
        let plan = self.active_plan;
        // The speculation draw always happens (keeps `rng`'s stream, and
        // therefore every fault-free experiment, unchanged); an injected
        // miss only overrides a draw that would have succeeded.
        let mut speculation_ok = self.rng.gen::<f64>() < self.cfg.zc_success_prob;
        if speculation_ok
            && plan.spec_miss_prob > 0.0
            && plan.applies_to(self.is_client)
            && self.fault_rng.gen::<f64>() < plan.spec_miss_prob
        {
            speculation_ok = false;
        }
        if speculation_ok {
            let parts: Option<Vec<ZcBytes>> = frames
                .iter()
                .map(|f| match &f.payload {
                    // zc-audit: allow(cheap-clone) — ZcBytes view into the frame, no payload bytes move
                    FramePayload::Referenced(z) => Some(z.clone()),
                    FramePayload::Copied(_) => None,
                })
                .collect();
            if let Some(parts) = parts {
                // The speculative-defragmentation hardware places payload at
                // page granularity: a block that does not start on a page
                // boundary can never land in place (paper [10]; ablation A2
                // exercises exactly this constraint).
                let aligned = parts.first().is_some_and(|p| p.is_page_aligned());
                if aligned {
                    if let Some(joined) = ZcBytes::join_contiguous(&parts) {
                        self.stats.add(TransportField::SpecHits, 1);
                        self.ctx.telemetry.record(
                            TraceLayer::Transport,
                            EventKind::SpecHit,
                            self.trace_conn,
                            0,
                            total as u64,
                        );
                        return Ok(joined);
                    }
                }
            }
        }
        // Speculation miss: the driver falls back to copying the fragments
        // into a fresh page-aligned buffer.
        self.stats.add(TransportField::SpecMisses, 1);
        self.ctx.telemetry.record(
            TraceLayer::Transport,
            EventKind::SpecMiss,
            self.trace_conn,
            0,
            total as u64,
        );
        let meter = Arc::clone(&self.ctx.meter);
        let mut buf = self.ctx.pool.acquire(total);
        buf.set_len(total);
        for f in &frames {
            let payload = f.payload.as_slice();
            let span = checked_span(f.offset, payload.len(), total)?;
            meter.copy(
                CopyLayer::DepositFallback,
                &mut buf.as_mut_slice()[span],
                payload,
            );
        }
        Ok(buf.freeze())
    }
}

impl Connection for SimConn {
    fn send_control(&mut self, msg: &[u8]) -> TResult<()> {
        self.stats.add(TransportField::ControlSent, 1);
        self.stats.add(TransportField::BytesSent, msg.len() as u64);
        match self.cfg.mode {
            StackMode::Copying => self.send_bytes_copying(Lane::Control, msg),
            StackMode::ZeroCopy => {
                // Control messages are small; the zero-copy stack still
                // moves them through the socket (one metered copy), but
                // skips the pagepool and fragmentation machinery.
                let mut framed = vec![0u8; msg.len()];
                self.ctx.meter.copy(CopyLayer::SocketSend, &mut framed, msg);
                let block_id = self.alloc_block_id();
                let sent_ns = self.wire_stamp();
                self.send_frame(Frame {
                    lane: Lane::Control,
                    block_id,
                    offset: 0,
                    total_len: msg.len() as u64,
                    sent_ns,
                    payload: FramePayload::Copied(framed),
                })
            }
        }
    }

    fn recv_control(&mut self) -> TResult<Vec<u8>> {
        let frames = self.recv_block_frames(Lane::Control)?;
        self.stats.add(TransportField::ControlRecv, 1);
        let out = match self.cfg.mode {
            StackMode::Copying => {
                let z = self.reassemble_copying(&frames)?;
                // zc-audit: allow(copy) — copying stack hands the control path an owned buffer; accounted as SocketRecv
                z.as_slice().to_vec()
            }
            StackMode::ZeroCopy => {
                let total = checked_block_len(frames.first().map_or(0, |f| f.total_len))?;
                let mut out = vec![0u8; total];
                for f in &frames {
                    let p = f.payload.as_slice();
                    let span = checked_span(f.offset, p.len(), total)?;
                    self.ctx
                        .meter
                        .copy(CopyLayer::SocketRecv, &mut out[span], p);
                }
                out
            }
        };
        self.stats.add(TransportField::BytesRecv, out.len() as u64);
        Ok(out)
    }

    fn send_data(&mut self, block: &ZcBytes) -> TResult<()> {
        self.stats.add(TransportField::DataBlocksSent, 1);
        self.stats
            .add(TransportField::BytesSent, block.len() as u64);
        match self.cfg.mode {
            StackMode::Copying => self.send_bytes_copying(Lane::Data, block.as_slice()),
            StackMode::ZeroCopy => self.send_block_zero_copy(block),
        }
    }

    fn recv_data(&mut self, expected_len: usize) -> TResult<ZcBytes> {
        let frames = self.recv_block_frames(Lane::Data)?;
        let total = frames[0].total_len as usize;
        if total != expected_len {
            // zc-audit: allow(control-plane) — protocol error diagnostic
            return Err(TransportError::Protocol(format!(
                "data block length {total} does not match announced {expected_len}"
            )));
        }
        if self.ctx.telemetry.is_enabled() {
            self.ctx
                .telemetry
                .metrics()
                .frames_per_block
                .record(frames.len() as u64);
            // Data-path flight time, derived from the first fragment's
            // put-on-wire stamp (both ends share the process trace clock).
            let sent_ns = frames[0].sent_ns;
            if sent_ns != 0 {
                let now = zc_trace::now_ns();
                if now >= sent_ns {
                    self.ctx
                        .telemetry
                        .metrics()
                        .data_wire_ns
                        .record(now - sent_ns);
                }
            }
        }
        let block = match self.cfg.mode {
            StackMode::Copying => self.reassemble_copying(&frames)?,
            StackMode::ZeroCopy => self.reassemble_zero_copy(frames)?,
        };
        self.stats.add(TransportField::DataBlocksRecv, 1);
        self.stats
            .add(TransportField::BytesRecv, block.len() as u64);
        Ok(block)
    }

    fn is_zero_copy(&self) -> bool {
        self.cfg.mode == StackMode::ZeroCopy
    }

    fn stats(&self) -> ConnStats {
        self.stats.snapshot()
    }

    fn peer(&self) -> String {
        // zc-audit: allow(control-plane) — short peer-name string for diagnostics
        self.peer.clone()
    }

    fn set_recv_timeout(&mut self, timeout: Option<std::time::Duration>) -> TResult<()> {
        self.recv_timeout = timeout;
        Ok(())
    }

    fn trace_conn_id(&self) -> u64 {
        self.trace_conn
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(cfg: SimConfig) -> (Box<dyn Connection>, Box<dyn Connection>, TransportCtx) {
        let net = SimNetwork::new(cfg);
        let ctx = TransportCtx::new();
        let listener = net.listen(0, ctx.clone()).unwrap();
        let port = listener.endpoint().1;
        let client = net.connect(port, ctx.clone()).unwrap();
        let server = listener.accept().unwrap();
        (client, server, ctx)
    }

    #[test]
    fn control_roundtrip_copying() {
        let (mut c, mut s, _ctx) = pair(SimConfig::copying());
        c.send_control(b"hello").unwrap();
        assert_eq!(s.recv_control().unwrap(), b"hello");
        s.send_control(b"world").unwrap();
        assert_eq!(c.recv_control().unwrap(), b"world");
    }

    #[test]
    fn control_roundtrip_zero_copy() {
        let (mut c, mut s, _ctx) = pair(SimConfig::zero_copy());
        c.send_control(b"ping").unwrap();
        assert_eq!(s.recv_control().unwrap(), b"ping");
    }

    #[test]
    fn empty_control_message() {
        let (mut c, mut s, _ctx) = pair(SimConfig::copying());
        c.send_control(b"").unwrap();
        assert_eq!(s.recv_control().unwrap(), b"");
    }

    #[test]
    fn data_roundtrip_copying_has_four_copies() {
        let (mut c, mut s, ctx) = pair(SimConfig::copying());
        let n = 1 << 20;
        let block = ZcBytes::zeroed(n);
        let before = ctx.meter.snapshot();
        c.send_data(&block).unwrap();
        let got = s.recv_data(n).unwrap();
        assert_eq!(got.len(), n);
        let d = ctx.meter.snapshot().since(&before);
        assert_eq!(d.bytes(CopyLayer::SocketSend), n as u64);
        assert_eq!(d.bytes(CopyLayer::KernelFrag), n as u64);
        assert_eq!(d.bytes(CopyLayer::KernelDefrag), n as u64);
        assert_eq!(d.bytes(CopyLayer::SocketRecv), n as u64);
        assert!(!got.ptr_eq(&block), "copying stack must not share storage");
    }

    #[test]
    fn data_roundtrip_zero_copy_touches_nothing() {
        let (mut c, mut s, ctx) = pair(SimConfig::zero_copy());
        let n = (1 << 20) + 123; // non-page-multiple tail
        let mut buf = zc_buffers::AlignedBuf::with_capacity(n);
        let pattern: Vec<u8> = (0..n).map(|i| (i * 7 % 251) as u8).collect();
        buf.extend_from_slice(&pattern);
        let block = ZcBytes::from_aligned(buf);
        let before = ctx.meter.snapshot();
        c.send_data(&block).unwrap();
        let got = s.recv_data(n).unwrap();
        let d = ctx.meter.snapshot().since(&before);
        assert_eq!(d.overhead_bytes(), 0, "no payload byte copied");
        assert!(got.ptr_eq(&block), "receiver sees the sender's pages");
        assert_eq!(got.as_slice(), &pattern[..]);
        assert_eq!(s.stats().spec_hits, 1);
        assert_eq!(s.stats().spec_misses, 0);
    }

    #[test]
    fn zero_copy_speculation_miss_falls_back() {
        let (mut c, mut s, ctx) = pair(SimConfig::zero_copy_with_speculation(0.0));
        let n = 8192;
        let block = ZcBytes::zeroed(n);
        c.send_data(&block).unwrap();
        let got = s.recv_data(n).unwrap();
        assert!(!got.ptr_eq(&block), "miss forces a private copy");
        assert_eq!(got.len(), n);
        assert_eq!(s.stats().spec_misses, 1);
        assert_eq!(
            ctx.meter.bytes(CopyLayer::DepositFallback),
            n as u64,
            "fallback copy metered"
        );
    }

    #[test]
    fn speculation_rate_statistics() {
        let (mut c, mut s, _ctx) = pair(SimConfig::zero_copy_with_speculation(0.5));
        let rounds = 200;
        for _ in 0..rounds {
            c.send_data(&ZcBytes::zeroed(PAGE_SIZE)).unwrap();
            s.recv_data(PAGE_SIZE).unwrap();
        }
        let st = s.stats();
        assert_eq!(st.spec_hits + st.spec_misses, rounds);
        // 0.5 ± generous tolerance for 200 deterministic-seed draws
        assert!(
            st.spec_hits > 50 && st.spec_hits < 150,
            "hits={}",
            st.spec_hits
        );
    }

    #[test]
    fn misaligned_block_forces_fallback_copy() {
        // Ablation A2: a block that does not start on a page boundary can
        // never be deposited in place — the driver must copy.
        let (mut c, mut s, ctx) = pair(SimConfig::zero_copy());
        let whole = ZcBytes::zeroed(PAGE_SIZE * 2);
        let misaligned = whole.slice(1..PAGE_SIZE + 1);
        assert!(!misaligned.is_page_aligned());
        c.send_data(&misaligned).unwrap();
        let got = s.recv_data(PAGE_SIZE).unwrap();
        assert!(!got.ptr_eq(&whole), "misaligned deposit cannot share pages");
        assert_eq!(s.stats().spec_misses, 1);
        assert_eq!(
            ctx.meter.bytes(CopyLayer::DepositFallback),
            PAGE_SIZE as u64
        );
    }

    #[test]
    fn empty_data_block() {
        let (mut c, mut s, _ctx) = pair(SimConfig::zero_copy());
        c.send_data(&ZcBytes::empty()).unwrap();
        assert_eq!(s.recv_data(0).unwrap().len(), 0);
        let (mut c2, mut s2, _ctx2) = pair(SimConfig::copying());
        c2.send_data(&ZcBytes::empty()).unwrap();
        assert_eq!(s2.recv_data(0).unwrap().len(), 0);
    }

    #[test]
    fn length_mismatch_is_protocol_error() {
        let (mut c, mut s, _ctx) = pair(SimConfig::copying());
        c.send_data(&ZcBytes::zeroed(100)).unwrap();
        assert!(matches!(s.recv_data(200), Err(TransportError::Protocol(_))));
    }

    #[test]
    fn interleaved_control_and_data() {
        let (mut c, mut s, _ctx) = pair(SimConfig::zero_copy());
        // Send data first, then control; receive control first.
        c.send_data(&ZcBytes::zeroed(PAGE_SIZE * 2)).unwrap();
        c.send_control(b"after-data").unwrap();
        assert_eq!(s.recv_control().unwrap(), b"after-data");
        assert_eq!(s.recv_data(PAGE_SIZE * 2).unwrap().len(), PAGE_SIZE * 2);
    }

    #[test]
    fn peer_close_is_detected() {
        let (c, mut s, _ctx) = pair(SimConfig::copying());
        drop(c);
        assert_eq!(s.recv_control().unwrap_err(), TransportError::Closed);
    }

    #[test]
    fn connect_refused_without_listener() {
        let net = SimNetwork::new(SimConfig::copying());
        assert!(matches!(
            net.connect(9, TransportCtx::new()),
            Err(TransportError::ConnectionRefused(_))
        ));
    }

    #[test]
    fn port_reuse_rejected_then_released() {
        let net = SimNetwork::new(SimConfig::copying());
        let l = net.listen(5000, TransportCtx::new()).unwrap();
        assert!(matches!(
            net.listen(5000, TransportCtx::new()),
            Err(TransportError::AddrInUse(_))
        ));
        drop(l);
        assert!(net.listen(5000, TransportCtx::new()).is_ok());
    }

    #[test]
    fn multiple_connections_are_independent() {
        let net = SimNetwork::new(SimConfig::zero_copy());
        let ctx = TransportCtx::new();
        let l = net.listen(0, ctx.clone()).unwrap();
        let port = l.endpoint().1;
        let mut c1 = net.connect(port, ctx.clone()).unwrap();
        let mut c2 = net.connect(port, ctx.clone()).unwrap();
        let mut s1 = l.accept().unwrap();
        let mut s2 = l.accept().unwrap();
        c1.send_control(b"one").unwrap();
        c2.send_control(b"two").unwrap();
        assert_eq!(s1.recv_control().unwrap(), b"one");
        assert_eq!(s2.recv_control().unwrap(), b"two");
    }

    fn faulty_pair(
        cfg: SimConfig,
    ) -> (
        SimNetwork,
        Box<dyn Connection>,
        Box<dyn Connection>,
        TransportCtx,
    ) {
        let net = SimNetwork::new(cfg);
        let ctx = TransportCtx::new();
        let listener = net.listen(0, ctx.clone()).unwrap();
        let port = listener.endpoint().1;
        let client = net.connect(port, ctx.clone()).unwrap();
        let server = listener.accept().unwrap();
        (net, client, server, ctx)
    }

    #[test]
    fn fault_cut_kills_sender_then_peer_and_spares_replacements() {
        let net = SimNetwork::new(SimConfig::copying());
        let ctx = TransportCtx::new();
        let l = net.listen(0, ctx.clone()).unwrap();
        let port = l.endpoint().1;
        let mut c = net.connect(port, ctx.clone()).unwrap();
        let mut s = l.accept().unwrap();
        c.send_control(b"ok").unwrap();
        assert_eq!(s.recv_control().unwrap(), b"ok");

        net.inject_faults(FaultPlan::cut_after(0).on(FaultSide::Client));
        assert_eq!(c.send_control(b"dead").unwrap_err(), TransportError::Closed);
        assert_eq!(
            c.send_control(b"still dead").unwrap_err(),
            TransportError::Closed,
            "a cut wire stays cut"
        );
        assert_eq!(s.recv_control().unwrap_err(), TransportError::Closed);
        assert_eq!(net.faults_tripped(), 1);

        // The trip budget is spent: a replacement connection sails through.
        let mut c2 = net.connect(port, ctx.clone()).unwrap();
        let mut s2 = l.accept().unwrap();
        c2.send_control(b"again").unwrap();
        assert_eq!(s2.recv_control().unwrap(), b"again");
    }

    #[test]
    fn fault_drop_prob_one_kills_immediately() {
        let (net, mut c, _s, _ctx) = faulty_pair(SimConfig::copying());
        net.inject_faults(FaultPlan::drop(1.0));
        assert_eq!(c.send_control(b"x").unwrap_err(), TransportError::Closed);
    }

    #[test]
    fn fault_corrupt_frame_delivers_damaged_bytes() {
        let (net, mut c, mut s, _ctx) = faulty_pair(SimConfig::copying());
        net.inject_faults(FaultPlan {
            corrupt_frame: Some(0),
            ..FaultPlan::default()
        });
        let original = b"hello fault injector".to_vec();
        c.send_control(&original).unwrap();
        let got = s.recv_control().unwrap();
        assert_eq!(got.len(), original.len());
        assert_ne!(got, original, "payload must arrive damaged");
    }

    #[test]
    fn fault_corrupt_never_touches_sender_pages() {
        let (net, mut c, mut s, _ctx) = faulty_pair(SimConfig::zero_copy());
        net.inject_faults(FaultPlan {
            corrupt_frame: Some(0),
            ..FaultPlan::default()
        });
        let block = ZcBytes::zeroed(PAGE_SIZE);
        c.send_data(&block).unwrap();
        let got = s.recv_data(PAGE_SIZE).unwrap();
        assert!(
            block.as_slice().iter().all(|&b| b == 0),
            "sender buffer intact"
        );
        assert_ne!(got.as_slice(), block.as_slice(), "receiver sees damage");
        assert_eq!(s.stats().spec_misses, 1, "detached frame cannot join");
    }

    #[test]
    fn fault_truncate_surfaces_as_protocol_error() {
        let (net, mut c, mut s, _ctx) = faulty_pair(SimConfig::copying());
        net.inject_faults(FaultPlan {
            truncate_frame: Some(0),
            ..FaultPlan::default()
        });
        c.send_control(b"0123456789").unwrap();
        // The truncated block can never complete; the next block's frames
        // expose the mismatch deterministically.
        c.send_control(b"next").unwrap();
        assert!(matches!(s.recv_control(), Err(TransportError::Protocol(_))));
    }

    #[test]
    fn fault_delay_reorders_but_bytes_survive() {
        let (net, mut c, mut s, _ctx) = faulty_pair(SimConfig::zero_copy());
        net.inject_faults(FaultPlan {
            delay_frame: Some(0),
            ..FaultPlan::default()
        });
        let n = PAGE_SIZE * 2;
        let mut buf = zc_buffers::AlignedBuf::with_capacity(n);
        let pattern: Vec<u8> = (0..n).map(|i| (i * 13 % 251) as u8).collect();
        buf.extend_from_slice(&pattern);
        let block = ZcBytes::from_aligned(buf);
        c.send_data(&block).unwrap();
        let got = s.recv_data(n).unwrap();
        assert_eq!(got.as_slice(), &pattern[..], "reassembly is offset-based");
        assert_eq!(
            s.stats().spec_misses,
            1,
            "reordered fragments cannot join in place"
        );
    }

    #[test]
    fn fault_spec_miss_forces_fallback_with_intact_payload() {
        let (net, mut c, mut s, ctx) = faulty_pair(SimConfig::zero_copy());
        net.inject_faults(FaultPlan::spec_miss(1.0));
        let block = ZcBytes::zeroed(PAGE_SIZE);
        c.send_data(&block).unwrap();
        let got = s.recv_data(PAGE_SIZE).unwrap();
        assert!(!got.ptr_eq(&block), "forced miss copies");
        assert_eq!(got.as_slice(), block.as_slice());
        assert_eq!(s.stats().spec_misses, 1);
        assert_eq!(
            ctx.meter.bytes(CopyLayer::DepositFallback),
            PAGE_SIZE as u64
        );

        // Clearing the plan restores in-place deposits.
        net.clear_faults();
        c.send_data(&block).unwrap();
        let again = s.recv_data(PAGE_SIZE).unwrap();
        assert!(again.ptr_eq(&block));
    }

    #[test]
    fn fault_refuse_connects_then_clear() {
        let net = SimNetwork::new(SimConfig::copying());
        let ctx = TransportCtx::new();
        let l = net.listen(0, ctx.clone()).unwrap();
        let port = l.endpoint().1;
        net.inject_faults(FaultPlan::refuse());
        assert!(matches!(
            net.connect(port, ctx.clone()),
            Err(TransportError::ConnectionRefused(_))
        ));
        net.clear_faults();
        assert!(net.connect(port, ctx.clone()).is_ok());
    }

    #[test]
    fn fault_side_filter_leaves_other_side_alone() {
        let (net, mut c, mut s, _ctx) = faulty_pair(SimConfig::copying());
        net.inject_faults(FaultPlan::cut_after(0).on(FaultSide::Server));
        // Client sending is unaffected…
        c.send_control(b"client fine").unwrap();
        assert_eq!(s.recv_control().unwrap(), b"client fine");
        // …but the server's first send dies.
        assert_eq!(s.send_control(b"x").unwrap_err(), TransportError::Closed);
    }

    #[test]
    fn oversized_block_announcement_rejected() {
        let faults = Arc::new(FaultState::default());
        let (wire_tx, wire_rx) = unbounded();
        let (tx_unused, _rx_unused) = unbounded();
        let mut conn = SimConn::new(
            "sim:test#cap".to_string(),
            SimConfig::copying(),
            TransportCtx::new(),
            tx_unused,
            wire_rx,
            7,
            false,
            faults,
        );
        wire_tx
            .send(Frame {
                lane: Lane::Control,
                block_id: 0,
                offset: 0,
                total_len: MAX_SIM_BLOCK_BYTES + 1,
                sent_ns: 0,
                payload: FramePayload::Copied(vec![0u8; 16]),
            })
            .unwrap();
        match conn.recv_control() {
            Err(TransportError::Protocol(msg)) => {
                assert!(msg.contains("cap"), "{msg}");
            }
            other => panic!("expected protocol error, got {other:?}"),
        }
    }

    #[test]
    fn frame_and_wire_accounting() {
        let (mut c, _s, _ctx) = pair(SimConfig::copying());
        let n = MTU_PAYLOAD * 3 + 10;
        c.send_data(&ZcBytes::zeroed(n)).unwrap();
        let st = c.stats();
        assert_eq!(st.frames_sent, 4, "3 full frames + 1 tail");
        assert_eq!(
            st.wire_bytes_sent,
            (n + 4 * crate::frame::FRAME_HEADER_BYTES) as u64
        );
    }
}
