//! Frames on the simulated wire.
//!
//! The simulated NIC moves [`Frame`]s. A frame is an MTU-bounded unit with a
//! small header (the Ethernet/IP/TCP headers of the real stack, abstracted
//! to the fields the receiver needs) and a payload that is either *copied*
//! bytes (conventional driver: fragmentation forced a copy) or a *reference*
//! to pages of the original user buffer (zero-copy driver).

use zc_buffers::ZcBytes;

/// Bytes of protocol header per Ethernet frame on the simulated wire
/// (14 Ethernet + 20 IP + 20 TCP + 4 FCS — what a TCP segment on GbE
/// carries besides payload).
pub const FRAME_HEADER_BYTES: usize = 58;

/// Payload bytes per standard-MTU frame (1500 MTU − 40 IP/TCP).
pub const MTU_PAYLOAD: usize = 1460;

/// Logical lane a frame belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lane {
    /// Control path (synchronization, headers).
    Control,
    /// Data path (bulk payload).
    Data,
}

/// Frame payload representation.
#[derive(Debug, Clone)]
pub enum FramePayload {
    /// Bytes that were copied into the frame by the (simulated) driver.
    Copied(Vec<u8>),
    /// A zero-copy reference to a slice of the sender's buffer.
    Referenced(ZcBytes),
}

impl FramePayload {
    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        match self {
            FramePayload::Copied(v) => v.len(),
            FramePayload::Referenced(z) => z.len(),
        }
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The payload bytes, whichever representation.
    pub fn as_slice(&self) -> &[u8] {
        match self {
            FramePayload::Copied(v) => v,
            FramePayload::Referenced(z) => z.as_slice(),
        }
    }
}

/// One frame on the simulated wire.
#[derive(Debug, Clone)]
pub struct Frame {
    /// Which lane this frame belongs to.
    pub lane: Lane,
    /// Id of the block (message) this frame is a fragment of.
    pub block_id: u64,
    /// Byte offset of this fragment within its block.
    pub offset: u64,
    /// Total length of the block, repeated in every fragment so the
    /// receiver can allocate on first arrival.
    pub total_len: u64,
    /// Trace-clock stamp (`zc_trace::now_ns`) taken when the frame was put
    /// on the wire; `0` when the sender's telemetry was disabled. The
    /// receiver derives data-path flight time from the first fragment.
    pub sent_ns: u64,
    /// The fragment payload.
    pub payload: FramePayload,
}

impl Frame {
    /// Whether this is the final fragment of its block. A hostile offset
    /// near `u64::MAX` must not overflow the comparison, so the sum is
    /// checked: an overflowing window is never "last".
    pub fn is_last(&self) -> bool {
        self.offset.checked_add(self.payload.len() as u64) == Some(self.total_len)
    }

    /// Total bytes this frame occupies on the wire (header + payload).
    pub fn wire_bytes(&self) -> usize {
        FRAME_HEADER_BYTES.saturating_add(self.payload.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn last_fragment_detection() {
        let f = Frame {
            lane: Lane::Data,
            block_id: 1,
            offset: 1460,
            total_len: 2920,
            sent_ns: 0,
            payload: FramePayload::Copied(vec![0; 1460]),
        };
        assert!(f.is_last());
        let g = Frame {
            offset: 0,
            ..f.clone()
        };
        assert!(!g.is_last());
    }

    #[test]
    fn wire_bytes_include_header() {
        let f = Frame {
            lane: Lane::Control,
            block_id: 0,
            offset: 0,
            total_len: 10,
            sent_ns: 0,
            payload: FramePayload::Copied(vec![0; 10]),
        };
        assert_eq!(f.wire_bytes(), FRAME_HEADER_BYTES + 10);
    }

    #[test]
    fn referenced_payload_reads_through() {
        let z = ZcBytes::zeroed(100);
        let p = FramePayload::Referenced(z.slice(10..20));
        assert_eq!(p.len(), 10);
        assert_eq!(p.as_slice(), &[0u8; 10]);
    }
}
