//! The distributed transcoding farm: the paper's §5.4 application.
//!
//! A master (the client) grabs synthetic HDTV frames and distributes them
//! as CORBA requests to encoder worker objects; each worker runs the block
//! encoder and returns the bitstream. The payload either takes the
//! conventional path (`sequence<octet>`, copying stack) or the zero-copy
//! path (`sequence<ZC_Octet>`, deposits over the zero-copy stack) — the
//! two configurations whose application-level difference the paper
//! reports as "the entire performance gain is posed to our application".

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use zc_cdr::{OctetSeq, ZcOctetSeq};
use zc_orb::{ObjectAdapterExt, Orb, OrbResult, Servant, ServerRequest};
use zc_transport::{SimConfig, SimNetwork};

use crate::encoder::{encode_frame, EncoderConfig};
use crate::frame::{Frame, VideoFormat};
use crate::source::FrameSource;

/// Which ORB data path carries the frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PayloadMode {
    /// `sequence<octet>` over the standard ORB and copying stack — the
    /// "original ORB communicating over the standard TCP/IP stack".
    Standard,
    /// `sequence<ZC_Octet>` over the zero-copy ORB and zero-copy stack.
    ZeroCopy,
}

/// Farm configuration.
#[derive(Debug, Clone, Copy)]
pub struct FarmParams {
    /// Number of worker objects (each served on its own connection/thread).
    pub workers: usize,
    /// Frames to transcode.
    pub frames: usize,
    /// Video geometry.
    pub format: VideoFormat,
    /// Data path selection.
    pub payload: PayloadMode,
    /// Encoder settings used by the workers.
    pub encoder: EncoderConfig,
    /// Decode-verify every result on the master (slow; tests only).
    pub verify: bool,
    /// Skip the encode compute in the worker (returns a tiny digest
    /// instead of a bitstream). Isolates the *distribution* cost — the
    /// quantity the paper's ORB optimization targets; on 2026 hosts the
    /// DCT otherwise dominates wall time and hides the communication gap.
    pub passthrough: bool,
    /// Workload seed.
    pub seed: u64,
}

impl FarmParams {
    /// A small smoke configuration for tests.
    pub fn smoke(payload: PayloadMode) -> FarmParams {
        FarmParams {
            workers: 2,
            frames: 8,
            format: VideoFormat::TINY,
            payload,
            encoder: EncoderConfig::default(),
            verify: false,
            passthrough: false,
            seed: 0xFEED,
        }
    }
}

/// Result of a farm run.
#[derive(Debug, Clone, Copy)]
pub struct FarmOutcome {
    /// Frames transcoded per wall-clock second.
    pub fps: f64,
    /// Frames transcoded.
    pub frames: usize,
    /// Raw video bytes shipped master → workers.
    pub bytes_in: u64,
    /// Bitstream bytes shipped back.
    pub bytes_out: u64,
    /// Wall-clock time.
    pub wall: Duration,
    /// Raw-video goodput in Mbit/s (master → workers).
    pub input_mbit_s: f64,
}

impl FarmOutcome {
    /// Whether this run sustains the given frame rate (e.g. 25 fps for
    /// real-time PAL HDTV).
    pub fn is_real_time(&self, target_fps: f64) -> bool {
        self.fps >= target_fps
    }
}

/// The worker servant: encodes frames shipped over either payload type.
struct EncoderWorker {
    cfg: EncoderConfig,
}

impl EncoderWorker {
    fn encode(&self, format: VideoFormat, pts: u64, data: zc_buffers::ZcBytes) -> Vec<u8> {
        let frame = Frame::new(format, pts, data);
        encode_frame(&frame, &self.cfg)
    }
}

impl Servant for EncoderWorker {
    fn repo_id(&self) -> &'static str {
        "IDL:zcorba/media/EncoderWorker:1.0"
    }
    fn dispatch(&self, op: &str, req: &mut ServerRequest<'_>) -> OrbResult<()> {
        match op {
            "encode_zc" => {
                let w: u32 = req.arg()?;
                let h: u32 = req.arg()?;
                let pts: u64 = req.arg()?;
                let raw: ZcOctetSeq = req.arg()?;
                let bits =
                    self.encode(VideoFormat::new(w as usize, h as usize), pts, raw.into_zc());
                // The bitstream is fresh data created here; wrap it into an
                // aligned block so the reply rides the deposit path too.
                let mut buf = zc_buffers::AlignedBuf::with_capacity(bits.len());
                buf.extend_from_slice(&bits);
                req.result(&ZcOctetSeq::from_zc(zc_buffers::ZcBytes::from_aligned(buf)))
            }
            "pass_zc" => {
                let raw: ZcOctetSeq = req.arg()?;
                // touch nothing: acknowledge the frame's length only
                req.result(&(raw.len() as u32))
            }
            "pass_std" => {
                let raw: OctetSeq = req.arg()?;
                req.result(&(raw.len() as u32))
            }
            "encode_std" => {
                let w: u32 = req.arg()?;
                let h: u32 = req.arg()?;
                let pts: u64 = req.arg()?;
                let raw: OctetSeq = req.arg()?;
                let bits = self.encode(
                    VideoFormat::new(w as usize, h as usize),
                    pts,
                    zc_buffers::ZcBytes::from_aligned(zc_buffers::AlignedBuf::from_slice(&raw)),
                );
                req.result(&OctetSeq(bits))
            }
            // Whole-GOP encoding: the worker receives every frame of one
            // group-of-pictures (as zero-copy deposits), runs the stateful
            // I/P encoder locally, and returns the per-frame bitstreams.
            // This is how real parallel encoders split work: GOPs are
            // independent, frames within one are not.
            "encode_gop" => {
                let w: u32 = req.arg()?;
                let h: u32 = req.arg()?;
                let base_pts: u64 = req.arg()?;
                let frames: Vec<ZcOctetSeq> = req.arg()?;
                let fmt = VideoFormat::new(w as usize, h as usize);
                let mut gop_enc = crate::gop::GopEncoder::new(self.cfg, frames.len().max(1));
                let mut streams: Vec<OctetSeq> = Vec::with_capacity(frames.len());
                for (i, raw) in frames.into_iter().enumerate() {
                    let frame = Frame::new(fmt, base_pts + i as u64 * 3600, raw.into_zc());
                    let (_ty, bits) = gop_enc.encode(&frame);
                    streams.push(OctetSeq(bits));
                }
                req.result(&streams)
            }
            other => req.bad_operation(other),
        }
    }
}

/// The transcoding farm.
pub struct TranscodeFarm;

impl TranscodeFarm {
    /// GOP-parallel run: the sequence is split into groups of
    /// `gop_length` pictures; each worker claims whole GOPs, receives
    /// their frames as zero-copy deposits, and encodes I+P locally.
    /// Returns `(outcome, per-frame bitstreams in sequence order)`.
    pub fn run_gop(params: &FarmParams, gop_length: usize) -> (FarmOutcome, Vec<Vec<u8>>) {
        assert!(params.workers > 0 && params.frames > 0 && gop_length > 0);
        let zc = params.payload == PayloadMode::ZeroCopy;
        let sim_cfg = if zc {
            SimConfig::zero_copy()
        } else {
            SimConfig::copying()
        };
        let net = SimNetwork::new(sim_cfg);
        let server_orb = Orb::builder().sim(net.clone()).zc(zc).build();
        server_orb.adapter().register(
            "encoder-worker",
            Arc::new(EncoderWorker {
                cfg: params.encoder,
            }),
        );
        let server = server_orb.serve(0).unwrap();
        let ior = server
            .ior_for("encoder-worker", "IDL:zcorba/media/EncoderWorker:1.0")
            .unwrap();
        let client_orb = Orb::builder().sim(net).zc(zc).build();

        let gops = params.frames.div_ceil(gop_length);
        let next_gop = Arc::new(AtomicU64::new(0));
        /// The per-frame bitstreams of one encoded GOP.
        type GopStreams = Vec<Vec<u8>>;
        let results: Arc<parking_lot_std::Mutex<Vec<Option<GopStreams>>>> =
            Arc::new(parking_lot_std::Mutex::new(vec![None; gops]));
        let bytes_out = Arc::new(AtomicU64::new(0));
        let start = Instant::now();
        let mut handles = Vec::new();
        for _ in 0..params.workers.min(gops) {
            let obj = client_orb.resolve_private(&ior).unwrap();
            let next = Arc::clone(&next_gop);
            let results = Arc::clone(&results);
            let out_bytes = Arc::clone(&bytes_out);
            let p = *params;
            handles.push(std::thread::spawn(move || {
                let source = FrameSource::new(p.format, p.seed);
                loop {
                    let g = next.fetch_add(1, Ordering::SeqCst) as usize;
                    if g >= gops {
                        break;
                    }
                    let first = g * gop_length;
                    let last = ((g + 1) * gop_length).min(p.frames);
                    let frames: Vec<ZcOctetSeq> = (first..last)
                        .map(|i| ZcOctetSeq::from_zc(source.frame_at(i as u64).data))
                        .collect();
                    let (w, h) = (p.format.width as u32, p.format.height as u32);
                    let reply = obj
                        .request("encode_gop")
                        .arg(&w)
                        .unwrap()
                        .arg(&h)
                        .unwrap()
                        .arg(&(first as u64 * 3600))
                        .unwrap()
                        .arg(&frames)
                        .unwrap()
                        .invoke()
                        .expect("encode_gop");
                    let streams: Vec<OctetSeq> = reply.result().expect("gop result");
                    let bits: Vec<Vec<u8>> = streams.into_iter().map(|s| s.0).collect();
                    out_bytes.fetch_add(
                        bits.iter().map(|b| b.len() as u64).sum::<u64>(),
                        Ordering::Relaxed,
                    );
                    results.lock().unwrap()[g] = Some(bits);
                }
            }));
        }
        for h in handles {
            h.join().expect("gop worker thread");
        }
        let wall = start.elapsed();
        server.shutdown();

        let ordered: Vec<Vec<u8>> = Arc::try_unwrap(results)
            .expect("workers joined")
            .into_inner()
            .unwrap()
            .into_iter()
            .flat_map(|g| g.expect("every GOP encoded"))
            .collect();
        let bytes_in = params.frames as u64 * params.format.frame_bytes() as u64;
        let outcome = FarmOutcome {
            fps: params.frames as f64 / wall.as_secs_f64(),
            frames: params.frames,
            bytes_in,
            bytes_out: bytes_out.load(Ordering::Relaxed),
            wall,
            input_mbit_s: bytes_in as f64 * 8.0 / wall.as_secs_f64() / 1e6,
        };
        (outcome, ordered)
    }
}

// std Mutex for the GOP result table (no poisoning concerns matter here,
// and it keeps parking_lot out of this crate's public surface).
mod parking_lot_std {
    pub use std::sync::Mutex;
}

impl TranscodeFarm {
    /// Run a farm with `params`, returning throughput figures.
    pub fn run(params: &FarmParams) -> FarmOutcome {
        assert!(params.workers > 0 && params.frames > 0);
        let sim_cfg = match params.payload {
            PayloadMode::Standard => SimConfig::copying(),
            PayloadMode::ZeroCopy => SimConfig::zero_copy(),
        };
        let zc = params.payload == PayloadMode::ZeroCopy;
        let net = SimNetwork::new(sim_cfg);
        let server_orb = Orb::builder().sim(net.clone()).zc(zc).build();
        server_orb.adapter().register(
            "encoder-worker",
            Arc::new(EncoderWorker {
                cfg: params.encoder,
            }),
        );
        let server = server_orb.serve(0).unwrap();
        let ior = server
            .ior_for("encoder-worker", "IDL:zcorba/media/EncoderWorker:1.0")
            .unwrap();
        let client_orb = Orb::builder().sim(net).zc(zc).build();

        let next_frame = Arc::new(AtomicU64::new(0));
        let bytes_out = Arc::new(AtomicU64::new(0));
        let frames = params.frames as u64;
        let start = Instant::now();
        let mut handles = Vec::new();
        for _ in 0..params.workers {
            let obj = client_orb.resolve_private(&ior).unwrap();
            let next = Arc::clone(&next_frame);
            let out_bytes = Arc::clone(&bytes_out);
            let p = *params;
            handles.push(std::thread::spawn(move || {
                let source = FrameSource::new(p.format, p.seed);
                loop {
                    let i = next.fetch_add(1, Ordering::SeqCst);
                    if i >= frames {
                        break;
                    }
                    let frame = source.frame_at(i);
                    let (w, h) = (p.format.width as u32, p.format.height as u32);
                    if p.passthrough {
                        let ack: u32 = match p.payload {
                            PayloadMode::ZeroCopy => obj
                                .request("pass_zc")
                                .arg(&ZcOctetSeq::from_zc(frame.data.clone()))
                                .unwrap()
                                .invoke()
                                .expect("pass_zc")
                                .result()
                                .expect("ack"),
                            PayloadMode::Standard => obj
                                .request("pass_std")
                                .arg(&OctetSeq(frame.data.as_slice().to_vec()))
                                .unwrap()
                                .invoke()
                                .expect("pass_std")
                                .result()
                                .expect("ack"),
                        };
                        assert_eq!(ack as usize, p.format.frame_bytes());
                        out_bytes.fetch_add(4, Ordering::Relaxed);
                        continue;
                    }
                    let bits: Vec<u8> = match p.payload {
                        PayloadMode::ZeroCopy => {
                            let reply = obj
                                .request("encode_zc")
                                .arg(&w)
                                .unwrap()
                                .arg(&h)
                                .unwrap()
                                .arg(&frame.pts)
                                .unwrap()
                                .arg(&ZcOctetSeq::from_zc(frame.data.clone()))
                                .unwrap()
                                .invoke()
                                .expect("encode_zc");
                            let seq: ZcOctetSeq = reply.result().expect("result");
                            seq.as_zc().as_slice().to_vec()
                        }
                        PayloadMode::Standard => {
                            let reply = obj
                                .request("encode_std")
                                .arg(&w)
                                .unwrap()
                                .arg(&h)
                                .unwrap()
                                .arg(&frame.pts)
                                .unwrap()
                                .arg(&OctetSeq(frame.data.as_slice().to_vec()))
                                .unwrap()
                                .invoke()
                                .expect("encode_std");
                            let seq: OctetSeq = reply.result().expect("result");
                            seq.0
                        }
                    };
                    out_bytes.fetch_add(bits.len() as u64, Ordering::Relaxed);
                    if p.verify {
                        let decoded = crate::encoder::decode_frame(&bits).expect("valid stream");
                        assert_eq!(decoded.pts, frame.pts);
                        assert_eq!(decoded.format, frame.format);
                        let q = crate::encoder::psnr(frame.y(), decoded.y());
                        assert!(q > 25.0, "PSNR {q:.1} dB too low");
                    }
                }
            }));
        }
        for h in handles {
            h.join().expect("worker thread");
        }
        let wall = start.elapsed();
        server.shutdown();

        let bytes_in = params.frames as u64 * params.format.frame_bytes() as u64;
        let bytes_out = bytes_out.load(Ordering::Relaxed);
        FarmOutcome {
            fps: params.frames as f64 / wall.as_secs_f64(),
            frames: params.frames,
            bytes_in,
            bytes_out,
            wall,
            input_mbit_s: bytes_in as f64 * 8.0 / wall.as_secs_f64() / 1e6,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_copy_farm_smoke() {
        let mut p = FarmParams::smoke(PayloadMode::ZeroCopy);
        p.verify = true;
        let out = TranscodeFarm::run(&p);
        assert_eq!(out.frames, p.frames);
        assert!(out.fps > 0.0);
        assert!(out.bytes_out > 0);
        assert_eq!(out.bytes_in, (p.frames * p.format.frame_bytes()) as u64);
    }

    #[test]
    fn standard_farm_smoke() {
        let mut p = FarmParams::smoke(PayloadMode::Standard);
        p.verify = true;
        let out = TranscodeFarm::run(&p);
        assert_eq!(out.frames, p.frames);
        assert!(out.fps > 0.0);
    }

    #[test]
    fn single_worker_farm() {
        let mut p = FarmParams::smoke(PayloadMode::ZeroCopy);
        p.workers = 1;
        let out = TranscodeFarm::run(&p);
        assert_eq!(out.frames, p.frames);
    }

    #[test]
    fn many_workers_complete_all_frames_exactly_once() {
        let mut p = FarmParams::smoke(PayloadMode::ZeroCopy);
        p.workers = 6;
        p.frames = 40;
        p.verify = true; // per-frame pts checks catch duplication/loss
        let out = TranscodeFarm::run(&p);
        assert_eq!(out.frames, 40);
    }

    #[test]
    fn gop_parallel_farm_produces_decodable_streams() {
        use crate::encoder::psnr;
        use crate::gop::{FrameType, GopDecoder};
        let mut p = FarmParams::smoke(PayloadMode::ZeroCopy);
        p.frames = 11; // 3 GOPs of 4 (last one short)
        p.workers = 3;
        let gop_length = 4;
        let (outcome, streams) = TranscodeFarm::run_gop(&p, gop_length);
        assert_eq!(outcome.frames, 11);
        assert_eq!(streams.len(), 11);

        // Decode GOP by GOP and compare against the source.
        let source = FrameSource::new(p.format, p.seed);
        for (g, chunk) in streams.chunks(gop_length).enumerate() {
            let mut dec = GopDecoder::new();
            for (k, bits) in chunk.iter().enumerate() {
                let i = g * gop_length + k;
                let ty = if k == 0 { FrameType::I } else { FrameType::P };
                let frame = dec.decode(ty, bits).expect("decodable stream");
                let original = source.frame_at(i as u64);
                let q = psnr(original.y(), frame.y());
                assert!(q > 28.0, "frame {i}: PSNR {q:.1}");
            }
        }
    }

    #[test]
    fn gop_farm_standard_payload_also_works() {
        let mut p = FarmParams::smoke(PayloadMode::Standard);
        p.frames = 6;
        let (outcome, streams) = TranscodeFarm::run_gop(&p, 3);
        assert_eq!(outcome.frames, 6);
        assert_eq!(streams.len(), 6);
        assert!(outcome.bytes_out > 0);
    }

    #[test]
    fn passthrough_farm_ships_all_frames() {
        for payload in [PayloadMode::Standard, PayloadMode::ZeroCopy] {
            let mut p = FarmParams::smoke(payload);
            p.passthrough = true;
            p.frames = 20;
            let out = TranscodeFarm::run(&p);
            assert_eq!(out.frames, 20);
            assert_eq!(out.bytes_out, 20 * 4, "one u32 ack per frame");
        }
    }

    #[test]
    fn real_time_predicate() {
        let o = FarmOutcome {
            fps: 30.0,
            frames: 1,
            bytes_in: 1,
            bytes_out: 1,
            wall: Duration::from_secs(1),
            input_mbit_s: 1.0,
        };
        assert!(o.is_real_time(25.0));
        assert!(!o.is_real_time(60.0));
    }
}
