//! 8×8 block transforms: forward/inverse DCT-II, quantization, zigzag.
//!
//! The arithmetic core of the block encoder. Implemented as separable
//! 1-D passes over rows then columns (the classical O(n²)-per-vector
//! form — clear, exact, and fast enough; a real codec would use a
//! factorized integer transform, which changes constants, not structure).

/// Block edge length.
pub const N: usize = 8;

/// An 8×8 coefficient block in row-major order.
pub type Block = [f32; N * N];

fn basis(k: usize, n: usize) -> f32 {
    // cos((2n+1) k π / 16)
    ((2 * n + 1) as f32 * k as f32 * std::f32::consts::PI / 16.0).cos()
}

fn scale(k: usize) -> f32 {
    if k == 0 {
        (1.0f32 / N as f32).sqrt()
    } else {
        (2.0f32 / N as f32).sqrt()
    }
}

fn dct1d(input: &[f32; N]) -> [f32; N] {
    let mut out = [0.0f32; N];
    for (k, o) in out.iter_mut().enumerate() {
        let mut acc = 0.0;
        for (n, &x) in input.iter().enumerate() {
            acc += x * basis(k, n);
        }
        *o = scale(k) * acc;
    }
    out
}

fn idct1d(input: &[f32; N]) -> [f32; N] {
    let mut out = [0.0f32; N];
    for (n, o) in out.iter_mut().enumerate() {
        let mut acc = 0.0;
        for (k, &x) in input.iter().enumerate() {
            acc += scale(k) * x * basis(k, n);
        }
        *o = acc;
    }
    out
}

fn transform(block: &Block, f: impl Fn(&[f32; N]) -> [f32; N]) -> Block {
    let mut tmp = [0.0f32; N * N];
    // rows
    for r in 0..N {
        let mut row = [0.0f32; N];
        row.copy_from_slice(&block[r * N..(r + 1) * N]);
        tmp[r * N..(r + 1) * N].copy_from_slice(&f(&row));
    }
    // columns
    let mut out = [0.0f32; N * N];
    for c in 0..N {
        let mut col = [0.0f32; N];
        for r in 0..N {
            col[r] = tmp[r * N + c];
        }
        let t = f(&col);
        for r in 0..N {
            out[r * N + c] = t[r];
        }
    }
    out
}

/// Forward 2-D DCT-II.
pub fn fdct(block: &Block) -> Block {
    transform(block, dct1d)
}

/// Inverse 2-D DCT-II.
pub fn idct(block: &Block) -> Block {
    transform(block, idct1d)
}

/// The MPEG intra quantization matrix (ISO 13818-2 default).
pub const INTRA_QUANT: [u16; N * N] = [
    8, 16, 19, 22, 26, 27, 29, 34, //
    16, 16, 22, 24, 27, 29, 34, 37, //
    19, 22, 26, 27, 29, 34, 34, 38, //
    22, 22, 26, 27, 29, 34, 37, 40, //
    22, 26, 27, 29, 32, 35, 40, 48, //
    26, 27, 29, 32, 35, 40, 48, 58, //
    26, 27, 29, 34, 38, 46, 56, 69, //
    27, 29, 35, 38, 46, 56, 69, 83,
];

/// Quantize DCT coefficients to integers (quality `q` scales the matrix;
/// higher q = coarser = smaller output).
pub fn quantize(block: &Block, q: u16) -> [i16; N * N] {
    let mut out = [0i16; N * N];
    for i in 0..N * N {
        let step = (INTRA_QUANT[i] as f32 * q as f32 / 16.0).max(1.0);
        out[i] = (block[i] / step).round().clamp(-2047.0, 2047.0) as i16;
    }
    out
}

/// Invert [`quantize`].
pub fn dequantize(coeffs: &[i16; N * N], q: u16) -> Block {
    let mut out = [0.0f32; N * N];
    for i in 0..N * N {
        let step = (INTRA_QUANT[i] as f32 * q as f32 / 16.0).max(1.0);
        out[i] = coeffs[i] as f32 * step;
    }
    out
}

/// The zigzag scan order (low frequencies first, so runs of zeros cluster
/// at the end for the run-length coder).
pub const ZIGZAG: [usize; N * N] = [
    0, 1, 8, 16, 9, 2, 3, 10, 17, 24, 32, 25, 18, 11, 4, 5, 12, 19, 26, 33, 40, 48, 41, 34, 27, 20,
    13, 6, 7, 14, 21, 28, 35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51, 58, 59,
    52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63,
];

/// Reorder coefficients into zigzag order.
pub fn zigzag_scan(coeffs: &[i16; N * N]) -> [i16; N * N] {
    let mut out = [0i16; N * N];
    for (i, &z) in ZIGZAG.iter().enumerate() {
        out[i] = coeffs[z];
    }
    out
}

/// Invert [`zigzag_scan`].
pub fn zigzag_unscan(scanned: &[i16; N * N]) -> [i16; N * N] {
    let mut out = [0i16; N * N];
    for (i, &z) in ZIGZAG.iter().enumerate() {
        out[z] = scanned[i];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_block() -> Block {
        let mut b = [0.0f32; 64];
        for (i, v) in b.iter_mut().enumerate() {
            *v = ((i * 7) % 255) as f32 - 128.0;
        }
        b
    }

    #[test]
    fn dct_idct_roundtrip() {
        let b = sample_block();
        let back = idct(&fdct(&b));
        for i in 0..64 {
            assert!(
                (b[i] - back[i]).abs() < 0.01,
                "i={i}: {} vs {}",
                b[i],
                back[i]
            );
        }
    }

    #[test]
    fn dct_preserves_energy() {
        // Parseval: the DCT is orthonormal, so ∑x² = ∑X².
        let b = sample_block();
        let t = fdct(&b);
        let e_in: f32 = b.iter().map(|x| x * x).sum();
        let e_out: f32 = t.iter().map(|x| x * x).sum();
        assert!((e_in - e_out).abs() / e_in < 1e-4);
    }

    #[test]
    fn flat_block_is_pure_dc() {
        let b = [100.0f32; 64];
        let t = fdct(&b);
        assert!((t[0] - 800.0).abs() < 0.01, "DC = 8 * value");
        assert!(t[1..].iter().all(|&x| x.abs() < 0.01));
    }

    #[test]
    fn zigzag_is_a_permutation() {
        let mut seen = [false; 64];
        for &z in &ZIGZAG {
            assert!(!seen[z], "duplicate index {z}");
            seen[z] = true;
        }
        assert!(seen.iter().all(|&s| s));
        // first entries are the lowest frequencies
        assert_eq!(&ZIGZAG[..4], &[0, 1, 8, 16]);
    }

    #[test]
    fn zigzag_roundtrip() {
        let mut c = [0i16; 64];
        for (i, v) in c.iter_mut().enumerate() {
            *v = i as i16 - 32;
        }
        assert_eq!(zigzag_unscan(&zigzag_scan(&c)), c);
    }

    #[test]
    fn quantize_roundtrip_bounded_error() {
        let b = sample_block();
        let t = fdct(&b);
        for q in [4u16, 16, 31] {
            let deq = dequantize(&quantize(&t, q), q);
            let back = idct(&deq);
            let max_step = INTRA_QUANT
                .iter()
                .map(|&s| s as f32 * q as f32 / 16.0)
                .fold(0.0f32, f32::max);
            for i in 0..64 {
                assert!(
                    (b[i] - back[i]).abs() <= max_step,
                    "q={q} i={i}: err {}",
                    (b[i] - back[i]).abs()
                );
            }
        }
    }

    #[test]
    fn coarser_quantization_zeroes_more() {
        let t = fdct(&sample_block());
        let fine = quantize(&t, 2);
        let coarse = quantize(&t, 31);
        let nz = |c: &[i16; 64]| c.iter().filter(|&&x| x != 0).count();
        assert!(nz(&coarse) <= nz(&fine));
    }
}
