//! The synthetic video source — stand-in for the paper's HDTV frame
//! grabber / DVD MPEG-2 input.
//!
//! Frames carry a deterministic moving pattern: smooth gradients plus a
//! translating high-contrast grid, so consecutive frames differ (motion),
//! the content is compressible-but-not-trivial for the block encoder, and
//! any frame can be regenerated for verification from `(seed, index)`.

use zc_buffers::{AlignedBuf, ZcBytes};

use crate::frame::{Frame, VideoFormat};

/// Deterministic generator of YUV 4:2:0 frames.
#[derive(Debug, Clone)]
pub struct FrameSource {
    format: VideoFormat,
    seed: u64,
    next_index: u64,
    /// 90 kHz ticks per frame (25 fps → 3600).
    pts_step: u64,
}

impl FrameSource {
    /// A source producing `format` frames at 25 fps.
    pub fn new(format: VideoFormat, seed: u64) -> FrameSource {
        FrameSource {
            format,
            seed,
            next_index: 0,
            pts_step: 3600,
        }
    }

    /// The geometry this source emits.
    pub fn format(&self) -> VideoFormat {
        self.format
    }

    /// Produce frame `index` (random access, used for verification).
    pub fn frame_at(&self, index: u64) -> Frame {
        let fmt = self.format;
        let mut buf = AlignedBuf::zeroed(fmt.frame_bytes());
        let phase = ((self.seed ^ index.wrapping_mul(7)) % 251) as usize + index as usize * 3;
        {
            let data = buf.as_mut_slice();
            let (y_plane, chroma) = data.split_at_mut(fmt.y_bytes());
            let (u_plane, v_plane) = chroma.split_at_mut(fmt.c_bytes());

            // Luma: diagonal gradient + moving grid lines every 16 px.
            for row in 0..fmt.height {
                let base = row * fmt.width;
                for col in 0..fmt.width {
                    let grad = ((row + col + phase) & 0xFF) as u8;
                    let grid = if (col + phase).is_multiple_of(16)
                        || (row + phase / 2).is_multiple_of(16)
                    {
                        200
                    } else {
                        0
                    };
                    y_plane[base + col] = grad / 2 + grid / 2 + 16;
                }
            }
            // Chroma: slow horizontal/vertical ramps around neutral 128.
            let cw = fmt.width / 2;
            let ch = fmt.height / 2;
            for row in 0..ch {
                for col in 0..cw {
                    u_plane[row * cw + col] = (112 + ((col + phase) & 0x1F)) as u8;
                    v_plane[row * cw + col] = (112 + ((row + phase) & 0x1F)) as u8;
                }
            }
        }
        Frame::new(fmt, index * self.pts_step, ZcBytes::from_aligned(buf))
    }

    /// Produce the next frame in sequence.
    pub fn next_frame(&mut self) -> Frame {
        let f = self.frame_at(self.next_index);
        self.next_index += 1;
        f
    }

    /// Frames emitted so far.
    pub fn produced(&self) -> u64 {
        self.next_index
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_random_access() {
        let mut s1 = FrameSource::new(VideoFormat::TINY, 9);
        let s2 = FrameSource::new(VideoFormat::TINY, 9);
        let a = s1.next_frame();
        let b = s1.next_frame();
        assert_eq!(a.data, s2.frame_at(0).data);
        assert_eq!(b.data, s2.frame_at(1).data);
        assert_eq!(s1.produced(), 2);
    }

    #[test]
    fn consecutive_frames_differ_motion() {
        let s = FrameSource::new(VideoFormat::TINY, 1);
        assert_ne!(s.frame_at(0).data, s.frame_at(1).data);
    }

    #[test]
    fn different_seeds_differ() {
        let a = FrameSource::new(VideoFormat::TINY, 1).frame_at(0);
        let b = FrameSource::new(VideoFormat::TINY, 2).frame_at(0);
        assert_ne!(a.data, b.data);
    }

    #[test]
    fn pts_advances_at_25fps() {
        let s = FrameSource::new(VideoFormat::TINY, 0);
        assert_eq!(s.frame_at(0).pts, 0);
        assert_eq!(s.frame_at(10).pts, 36000);
    }

    #[test]
    fn pixels_are_video_range() {
        let f = FrameSource::new(VideoFormat::TINY, 3).frame_at(5);
        assert!(f.y().iter().all(|&p| p >= 16));
        assert!(f.u().iter().all(|&p| (112..=143).contains(&p)));
    }

    #[test]
    fn frames_are_page_aligned_for_deposit() {
        let f = FrameSource::new(VideoFormat::TINY, 0).frame_at(0);
        assert!(f.data.is_page_aligned());
    }
}
