//! Video frames in planar YUV 4:2:0, stored in zero-copy buffers.

use zc_buffers::ZcBytes;

/// A video geometry (luma plane dimensions; chroma is subsampled 2×2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VideoFormat {
    /// Luma width in pixels (must be a multiple of 16 — MPEG macroblocks).
    pub width: usize,
    /// Luma height in pixels (multiple of 16).
    pub height: usize,
}

impl VideoFormat {
    /// Full HDTV, the paper's headline format (≈ 3.1 MB/frame).
    pub const HDTV_1080: VideoFormat = VideoFormat {
        width: 1920,
        height: 1088, // 1080 rounded up to a macroblock multiple
    };

    /// SD format (DVD-class input).
    pub const SD_480: VideoFormat = VideoFormat {
        width: 720,
        height: 480,
    };

    /// A small format for fast tests.
    pub const TINY: VideoFormat = VideoFormat {
        width: 64,
        height: 48,
    };

    /// Construct, checking macroblock alignment.
    pub fn new(width: usize, height: usize) -> VideoFormat {
        assert!(
            width.is_multiple_of(16) && height.is_multiple_of(16) && width > 0 && height > 0,
            "dimensions must be positive multiples of 16"
        );
        VideoFormat { width, height }
    }

    /// Bytes in the luma plane.
    pub fn y_bytes(self) -> usize {
        self.width * self.height
    }

    /// Bytes in each chroma plane (4:2:0).
    pub fn c_bytes(self) -> usize {
        self.y_bytes() / 4
    }

    /// Total bytes per frame.
    pub fn frame_bytes(self) -> usize {
        self.y_bytes() + 2 * self.c_bytes()
    }

    /// Macroblocks per frame (16×16 luma).
    pub fn macroblocks(self) -> usize {
        (self.width / 16) * (self.height / 16)
    }
}

/// One video frame: format, presentation timestamp, and the planar
/// YUV 4:2:0 payload in a page-aligned zero-copy buffer
/// (layout: Y plane, then U, then V).
#[derive(Debug, Clone)]
pub struct Frame {
    /// Geometry.
    pub format: VideoFormat,
    /// Presentation timestamp in 90 kHz ticks (MPEG convention).
    pub pts: u64,
    /// The pixel data.
    pub data: ZcBytes,
}

impl Frame {
    /// Wrap pixel data, validating the length.
    pub fn new(format: VideoFormat, pts: u64, data: ZcBytes) -> Frame {
        assert_eq!(
            data.len(),
            format.frame_bytes(),
            "payload does not match format"
        );
        Frame { format, pts, data }
    }

    /// The luma plane.
    pub fn y(&self) -> &[u8] {
        &self.data.as_slice()[..self.format.y_bytes()]
    }

    /// The first chroma plane (U/Cb).
    pub fn u(&self) -> &[u8] {
        let y = self.format.y_bytes();
        &self.data.as_slice()[y..y + self.format.c_bytes()]
    }

    /// The second chroma plane (V/Cr).
    pub fn v(&self) -> &[u8] {
        let y = self.format.y_bytes();
        let c = self.format.c_bytes();
        &self.data.as_slice()[y + c..y + 2 * c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hdtv_frame_is_about_three_megabytes() {
        let n = VideoFormat::HDTV_1080.frame_bytes();
        assert_eq!(n, 1920 * 1088 * 3 / 2);
        assert!(n > 3_000_000 && n < 3_200_000);
    }

    #[test]
    fn plane_slicing() {
        let fmt = VideoFormat::TINY;
        let mut buf = zc_buffers::AlignedBuf::zeroed(fmt.frame_bytes());
        // mark plane starts
        buf.as_mut_slice()[0] = 1; // Y[0]
        buf.as_mut_slice()[fmt.y_bytes()] = 2; // U[0]
        buf.as_mut_slice()[fmt.y_bytes() + fmt.c_bytes()] = 3; // V[0]
        let f = Frame::new(fmt, 0, ZcBytes::from_aligned(buf));
        assert_eq!(f.y()[0], 1);
        assert_eq!(f.u()[0], 2);
        assert_eq!(f.v()[0], 3);
        assert_eq!(f.y().len(), fmt.y_bytes());
        assert_eq!(f.u().len(), fmt.c_bytes());
        assert_eq!(f.v().len(), fmt.c_bytes());
    }

    #[test]
    #[should_panic(expected = "payload does not match")]
    fn wrong_length_rejected() {
        Frame::new(VideoFormat::TINY, 0, ZcBytes::zeroed(10));
    }

    #[test]
    #[should_panic(expected = "multiples of 16")]
    fn unaligned_format_rejected() {
        VideoFormat::new(100, 100);
    }

    #[test]
    fn macroblock_count() {
        assert_eq!(VideoFormat::TINY.macroblocks(), 4 * 3);
        assert_eq!(VideoFormat::HDTV_1080.macroblocks(), 120 * 68);
    }
}
