//! GOP (group-of-pictures) coding: I-frames and predicted P-frames.
//!
//! The §5.4 transcoder consumes an MPEG-2 stream and produces MPEG-4; both
//! are built around GOPs of intra frames followed by predicted frames.
//! This module adds the predicted mode to the block encoder: a P-frame
//! codes, per 8×8 block, the *residual* against the previously
//! reconstructed frame — with conditional replenishment (blocks whose
//! residual is negligible are skipped outright), which is where the large
//! compression wins on slowly-changing content come from.
//!
//! Bitstream (after the common 18-byte header of `encoder`):
//! per block, either the skip marker `0xFE`, or `0x00` followed by the
//! RLE-coded quantized residual exactly as in intra coding.

use zc_buffers::{AlignedBuf, ZcBytes};

use crate::dct::{dequantize, fdct, idct, quantize, zigzag_scan, zigzag_unscan, Block, N};
use crate::encoder::EncoderConfig;
use crate::frame::Frame;

const MAGIC_P: &[u8; 4] = b"ZMPP";
const BLOCK_SKIP: u8 = 0xFE;
const BLOCK_CODED: u8 = 0x00;
const EOB: u8 = 0xFF;

/// Frame type produced by the GOP encoder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameType {
    /// Intra frame (self-contained).
    I,
    /// Predicted frame (residual against the previous reconstruction).
    P,
}

/// Residual magnitude below which a block is skipped (conditional
/// replenishment threshold, in absolute pixel difference).
const SKIP_THRESHOLD: i32 = 2;

fn load_block(plane: &[u8], stride: usize, bx: usize, by: usize) -> [i32; N * N] {
    let mut out = [0i32; N * N];
    for r in 0..N {
        for c in 0..N {
            out[r * N + c] = plane[(by * N + r) * stride + bx * N + c] as i32;
        }
    }
    out
}

fn store_block(plane: &mut [u8], stride: usize, bx: usize, by: usize, vals: &[i32; N * N]) {
    for r in 0..N {
        for c in 0..N {
            plane[(by * N + r) * stride + bx * N + c] = vals[r * N + c].clamp(0, 255) as u8;
        }
    }
}

fn rle_encode(scanned: &[i16; N * N], out: &mut Vec<u8>) {
    let mut run: u8 = 0;
    for &level in scanned {
        if level == 0 {
            if run == 0xFD {
                out.push(run);
                out.extend_from_slice(&0i16.to_le_bytes());
                run = 0;
            }
            run += 1;
        } else {
            out.push(run);
            out.extend_from_slice(&level.to_le_bytes());
            run = 0;
        }
    }
    out.push(EOB);
}

fn rle_decode(input: &[u8], pos: &mut usize) -> Option<[i16; N * N]> {
    let mut scanned = [0i16; N * N];
    let mut idx = 0usize;
    loop {
        let run = *input.get(*pos)?;
        *pos += 1;
        if run == EOB {
            break;
        }
        idx += run as usize;
        if idx >= N * N {
            return None;
        }
        let lo = *input.get(*pos)?;
        let hi = *input.get(*pos + 1)?;
        *pos += 2;
        scanned[idx] = i16::from_le_bytes([lo, hi]);
        idx += 1;
    }
    Some(zigzag_unscan(&scanned))
}

fn encode_plane_p(
    cur: &[u8],
    prev: &[u8],
    w: usize,
    h: usize,
    quality: u16,
    out: &mut Vec<u8>,
) -> usize {
    let mut skipped = 0usize;
    for by in 0..h / N {
        for bx in 0..w / N {
            let c = load_block(cur, w, bx, by);
            let p = load_block(prev, w, bx, by);
            let max_diff = c
                .iter()
                .zip(&p)
                .map(|(a, b)| (a - b).abs())
                .max()
                .unwrap_or(0);
            if max_diff <= SKIP_THRESHOLD {
                out.push(BLOCK_SKIP);
                skipped += 1;
                continue;
            }
            out.push(BLOCK_CODED);
            let mut residual: Block = [0.0; N * N];
            for i in 0..N * N {
                residual[i] = (c[i] - p[i]) as f32;
            }
            let scanned = zigzag_scan(&quantize(&fdct(&residual), quality));
            rle_encode(&scanned, out);
        }
    }
    skipped
}

fn decode_plane_p(
    input: &[u8],
    pos: &mut usize,
    w: usize,
    h: usize,
    quality: u16,
    prev: &[u8],
    out: &mut [u8],
) -> Option<()> {
    for by in 0..h / N {
        for bx in 0..w / N {
            let marker = *input.get(*pos)?;
            *pos += 1;
            let p = load_block(prev, w, bx, by);
            match marker {
                BLOCK_SKIP => {
                    store_block(out, w, bx, by, &p);
                }
                BLOCK_CODED => {
                    let coeffs = rle_decode(input, pos)?;
                    let residual = idct(&dequantize(&coeffs, quality));
                    let mut vals = [0i32; N * N];
                    for i in 0..N * N {
                        vals[i] = p[i] + residual[i].round() as i32;
                    }
                    store_block(out, w, bx, by, &vals);
                }
                _ => return None,
            }
        }
    }
    Some(())
}

/// Encode a P-frame: `cur` against the reconstruction `prev`.
/// Returns `(bitstream, skipped_blocks)`.
pub fn encode_frame_p(cur: &Frame, prev: &Frame, cfg: &EncoderConfig) -> (Vec<u8>, usize) {
    assert_eq!(cur.format, prev.format, "GOP frames share one geometry");
    assert!((1..=31).contains(&cfg.quality));
    let fmt = cur.format;
    let mut out = Vec::with_capacity(fmt.frame_bytes() / 8);
    out.extend_from_slice(MAGIC_P);
    out.extend_from_slice(&(fmt.width as u16).to_le_bytes());
    out.extend_from_slice(&(fmt.height as u16).to_le_bytes());
    out.extend_from_slice(&cfg.quality.to_le_bytes());
    out.extend_from_slice(&cur.pts.to_le_bytes());
    let mut skipped = 0;
    skipped += encode_plane_p(
        cur.y(),
        prev.y(),
        fmt.width,
        fmt.height,
        cfg.quality,
        &mut out,
    );
    skipped += encode_plane_p(
        cur.u(),
        prev.u(),
        fmt.width / 2,
        fmt.height / 2,
        cfg.quality,
        &mut out,
    );
    skipped += encode_plane_p(
        cur.v(),
        prev.v(),
        fmt.width / 2,
        fmt.height / 2,
        cfg.quality,
        &mut out,
    );
    (out, skipped)
}

/// Decode a P-frame against the reconstruction `prev`.
pub fn decode_frame_p(bitstream: &[u8], prev: &Frame) -> Option<Frame> {
    if bitstream.len() < 18 || &bitstream[..4] != MAGIC_P {
        return None;
    }
    let width = u16::from_le_bytes([bitstream[4], bitstream[5]]) as usize;
    let height = u16::from_le_bytes([bitstream[6], bitstream[7]]) as usize;
    let quality = u16::from_le_bytes([bitstream[8], bitstream[9]]);
    if width != prev.format.width || height != prev.format.height {
        return None;
    }
    if !(1..=31).contains(&quality) {
        return None;
    }
    let pts = u64::from_le_bytes(bitstream[10..18].try_into().ok()?);
    let fmt = prev.format;
    let mut buf = AlignedBuf::zeroed(fmt.frame_bytes());
    let mut pos = 18usize;
    {
        let data = buf.as_mut_slice();
        let (y, chroma) = data.split_at_mut(fmt.y_bytes());
        let (u, v) = chroma.split_at_mut(fmt.c_bytes());
        decode_plane_p(
            bitstream,
            &mut pos,
            fmt.width,
            fmt.height,
            quality,
            prev.y(),
            y,
        )?;
        decode_plane_p(
            bitstream,
            &mut pos,
            fmt.width / 2,
            fmt.height / 2,
            quality,
            prev.u(),
            u,
        )?;
        decode_plane_p(
            bitstream,
            &mut pos,
            fmt.width / 2,
            fmt.height / 2,
            quality,
            prev.v(),
            v,
        )?;
    }
    Some(Frame::new(fmt, pts, ZcBytes::from_aligned(buf)))
}

/// A stateful GOP encoder: every `gop_length`-th frame is intra, the rest
/// are predicted against the running reconstruction (so encoder and
/// decoder drift-track identically).
pub struct GopEncoder {
    cfg: EncoderConfig,
    gop_length: usize,
    count: usize,
    recon: Option<Frame>,
}

impl GopEncoder {
    /// New encoder with the given intra period.
    pub fn new(cfg: EncoderConfig, gop_length: usize) -> GopEncoder {
        assert!(gop_length >= 1);
        GopEncoder {
            cfg,
            gop_length,
            count: 0,
            recon: None,
        }
    }

    /// Encode the next frame of the sequence.
    pub fn encode(&mut self, frame: &Frame) -> (FrameType, Vec<u8>) {
        let force_i = self.count.is_multiple_of(self.gop_length) || self.recon.is_none();
        self.count += 1;
        if force_i {
            let bits = crate::encoder::encode_frame(frame, &self.cfg);
            // track the decoder: reconstruct from the bitstream
            self.recon = Some(crate::encoder::decode_frame(&bits).expect("own bitstream"));
            (FrameType::I, bits)
        } else {
            let prev = self.recon.as_ref().expect("P after I");
            let (bits, _skipped) = encode_frame_p(frame, prev, &self.cfg);
            self.recon = Some(decode_frame_p(&bits, prev).expect("own bitstream"));
            (FrameType::P, bits)
        }
    }
}

/// A stateful GOP decoder matching [`GopEncoder`].
pub struct GopDecoder {
    recon: Option<Frame>,
}

impl GopDecoder {
    /// Fresh decoder (must start on an I frame).
    pub fn new() -> GopDecoder {
        GopDecoder { recon: None }
    }

    /// Decode the next bitstream of the sequence.
    pub fn decode(&mut self, ty: FrameType, bits: &[u8]) -> Option<Frame> {
        let frame = match ty {
            FrameType::I => crate::encoder::decode_frame(bits)?,
            FrameType::P => decode_frame_p(bits, self.recon.as_ref()?)?,
        };
        self.recon = Some(frame.clone());
        Some(frame)
    }
}

impl Default for GopDecoder {
    fn default() -> Self {
        GopDecoder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::{encode_frame, psnr};
    use crate::frame::VideoFormat;
    use crate::source::FrameSource;

    fn src() -> FrameSource {
        FrameSource::new(VideoFormat::TINY, 11)
    }

    #[test]
    fn p_frame_roundtrip_quality() {
        let cfg = EncoderConfig { quality: 4 };
        let f0 = src().frame_at(0);
        let f1 = src().frame_at(1);
        let i_bits = encode_frame(&f0, &cfg);
        let recon0 = crate::encoder::decode_frame(&i_bits).unwrap();
        let (p_bits, _) = encode_frame_p(&f1, &recon0, &cfg);
        let recon1 = decode_frame_p(&p_bits, &recon0).unwrap();
        let q = psnr(f1.y(), recon1.y());
        assert!(q > 30.0, "P-frame luma PSNR {q:.1} dB");
        assert_eq!(recon1.pts, f1.pts);
    }

    #[test]
    fn static_scene_p_frames_are_tiny() {
        // same frame twice: the P-frame should be almost all skips
        let cfg = EncoderConfig::default();
        let f = src().frame_at(3);
        let recon = crate::encoder::decode_frame(&encode_frame(&f, &cfg)).unwrap();
        let (p_bits, skipped) = encode_frame_p(&recon, &recon, &cfg);
        let total_blocks = {
            let fmt = f.format;
            (fmt.width / 8) * (fmt.height / 8) + 2 * (fmt.width / 16) * (fmt.height / 16)
        };
        assert_eq!(skipped, total_blocks, "every block skipped");
        assert!(
            p_bits.len() < total_blocks + 64,
            "one marker byte per block"
        );
        // and the P frame of real motion is bigger but still beats intra
        let f_next = src().frame_at(4);
        let (p_motion, _) = encode_frame_p(&f_next, &recon, &cfg);
        let i_next = encode_frame(&f_next, &cfg);
        assert!(p_motion.len() <= i_next.len());
    }

    #[test]
    fn gop_sequence_roundtrip() {
        let mut enc = GopEncoder::new(EncoderConfig { quality: 4 }, 4);
        let mut dec = GopDecoder::new();
        let source = src();
        let mut types = Vec::new();
        for i in 0..10 {
            let frame = source.frame_at(i);
            let (ty, bits) = enc.encode(&frame);
            types.push(ty);
            let out = dec.decode(ty, &bits).expect("decode");
            assert_eq!(out.pts, frame.pts);
            let q = psnr(frame.y(), out.y());
            assert!(q > 28.0, "frame {i} ({ty:?}): PSNR {q:.1}");
        }
        assert_eq!(types[0], FrameType::I);
        assert_eq!(types[4], FrameType::I);
        assert_eq!(types[8], FrameType::I);
        assert!(types.iter().filter(|&&t| t == FrameType::P).count() == 7);
    }

    #[test]
    fn p_decoder_rejects_mismatched_reference() {
        let cfg = EncoderConfig::default();
        let f = src().frame_at(0);
        let recon = crate::encoder::decode_frame(&encode_frame(&f, &cfg)).unwrap();
        let (p_bits, _) = encode_frame_p(&f, &recon, &cfg);
        // wrong geometry reference
        let other = FrameSource::new(VideoFormat::new(32, 32), 1).frame_at(0);
        assert!(decode_frame_p(&p_bits, &other).is_none());
        // garbage
        assert!(decode_frame_p(b"ZMPPxxxx", &recon).is_none());
        assert!(decode_frame_p(&p_bits[..20], &recon).is_none());
    }

    #[test]
    fn decoder_requires_leading_i_frame() {
        let mut dec = GopDecoder::new();
        let cfg = EncoderConfig::default();
        let f = src().frame_at(0);
        let recon = crate::encoder::decode_frame(&encode_frame(&f, &cfg)).unwrap();
        let (p_bits, _) = encode_frame_p(&f, &recon, &cfg);
        assert!(dec.decode(FrameType::P, &p_bits).is_none());
    }
}
