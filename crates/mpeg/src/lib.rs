//! zc-mpeg — the paper's technology demonstrator: a distributed
//! MPEG-2 → MPEG-4 transcoder built on zcorba (§5.4).
//!
//! "As a technology demonstrator we implemented a real-time
//! MPEG2-to-MPEG4 transcoder that uses the framework to parallelize an
//! object oriented MPEG-4 encoder modeled cleanly with distributed
//! objects. … The video data streams … either grabbed from a HDTV frame
//! grabber or extracted from a DVD MPEG-2 stream is distributed by CORBA
//! requests."
//!
//! We have neither a frame grabber nor DVDs, so the input side is a
//! deterministic synthetic video source ([`source::FrameSource`]) that
//! produces moving-pattern YUV 4:2:0 frames of the real HDTV geometry
//! (≈ 3.1 MB per 1920×1080 frame — the payload volume is what stresses the
//! ORB, and that is preserved). The encoder is a real, simplified
//! block-transform encoder ([`encoder`]): 8×8 DCT, quantization, zigzag,
//! run-length coding — the computational shape of an intra-only MPEG-4
//! encoder, with a matching decoder used by the tests to bound
//! reconstruction error.
//!
//! [`farm`] wires it together: worker objects export an `encode_frame`
//! operation; a farm distributes frames over the ORB (standard or
//! zero-copy payloads) and measures frames/second — the experiment behind
//! the paper's "factor of 10 … posed to our application" claim.

pub mod dct;
pub mod encoder;
pub mod farm;
pub mod frame;
pub mod gop;
pub mod source;

pub use encoder::{decode_frame, encode_frame, EncoderConfig};
pub use farm::{FarmOutcome, FarmParams, PayloadMode, TranscodeFarm};
pub use frame::{Frame, VideoFormat};
pub use gop::{decode_frame_p, encode_frame_p, FrameType, GopDecoder, GopEncoder};
pub use source::FrameSource;
