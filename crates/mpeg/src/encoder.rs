//! The simplified intra-frame block encoder (and its decoder).
//!
//! Per plane, per 8×8 block: level-shift → DCT → quantize → zigzag →
//! run-length code. The bitstream is deliberately simple (this is a
//! workload with the computational shape of an intra MPEG-4 encoder, not a
//! standards-compliant codec — see DESIGN.md):
//!
//! ```text
//! header: magic "ZMP4" | width u16 | height u16 | quality u16 | pts u64
//! per block, zigzag order, RLE: (run:u8, level:i16) pairs, terminated by
//! the EOB marker run=0xFF.
//! ```

use zc_buffers::{AlignedBuf, ZcBytes};

use crate::dct::{dequantize, fdct, idct, quantize, zigzag_scan, zigzag_unscan, Block, N};
use crate::frame::{Frame, VideoFormat};

/// Encoder settings.
#[derive(Debug, Clone, Copy)]
pub struct EncoderConfig {
    /// Quantizer scale 1..=31 (MPEG convention: higher = smaller/worse).
    pub quality: u16,
}

impl Default for EncoderConfig {
    fn default() -> Self {
        EncoderConfig { quality: 8 }
    }
}

const MAGIC: &[u8; 4] = b"ZMP4";
const EOB: u8 = 0xFF;

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_i16(out: &mut Vec<u8>, v: i16) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Encode one 8×8 block from `plane` at (bx, by).
fn encode_block(
    plane: &[u8],
    stride: usize,
    bx: usize,
    by: usize,
    quality: u16,
    out: &mut Vec<u8>,
) {
    let mut block: Block = [0.0; N * N];
    for r in 0..N {
        for c in 0..N {
            // level shift to signed
            block[r * N + c] = plane[(by * N + r) * stride + bx * N + c] as f32 - 128.0;
        }
    }
    let scanned = zigzag_scan(&quantize(&fdct(&block), quality));
    // RLE over the zigzag vector
    let mut run: u8 = 0;
    for &level in &scanned {
        if level == 0 {
            if run == 0xFE {
                // avoid colliding with EOB: flush a zero literal
                out.push(run);
                put_i16(out, 0);
                run = 0;
            }
            run += 1;
        } else {
            out.push(run);
            put_i16(out, level);
            run = 0;
        }
    }
    out.push(EOB);
}

fn decode_block(input: &[u8], pos: &mut usize) -> Option<[i16; N * N]> {
    let mut scanned = [0i16; N * N];
    let mut idx = 0usize;
    loop {
        let run = *input.get(*pos)?;
        *pos += 1;
        if run == EOB {
            break;
        }
        idx += run as usize;
        if idx >= N * N {
            return None;
        }
        let lo = *input.get(*pos)?;
        let hi = *input.get(*pos + 1)?;
        *pos += 2;
        scanned[idx] = i16::from_le_bytes([lo, hi]);
        idx += 1;
    }
    Some(zigzag_unscan(&scanned))
}

fn encode_plane(plane: &[u8], w: usize, h: usize, quality: u16, out: &mut Vec<u8>) {
    for by in 0..h / N {
        for bx in 0..w / N {
            encode_block(plane, w, bx, by, quality, out);
        }
    }
}

fn decode_plane(
    input: &[u8],
    pos: &mut usize,
    w: usize,
    h: usize,
    quality: u16,
    plane: &mut [u8],
) -> Option<()> {
    for by in 0..h / N {
        for bx in 0..w / N {
            let coeffs = decode_block(input, pos)?;
            let pixels = idct(&dequantize(&coeffs, quality));
            for r in 0..N {
                for c in 0..N {
                    let v = (pixels[r * N + c] + 128.0).round().clamp(0.0, 255.0) as u8;
                    plane[(by * N + r) * w + bx * N + c] = v;
                }
            }
        }
    }
    Some(())
}

/// Encode a frame; returns the bitstream.
pub fn encode_frame(frame: &Frame, cfg: &EncoderConfig) -> Vec<u8> {
    assert!((1..=31).contains(&cfg.quality), "quality out of range");
    let fmt = frame.format;
    // Empirical ~4:1 on the synthetic source; avoids rehash growth.
    let mut out = Vec::with_capacity(fmt.frame_bytes() / 3);
    out.extend_from_slice(MAGIC);
    put_u16(&mut out, fmt.width as u16);
    put_u16(&mut out, fmt.height as u16);
    put_u16(&mut out, cfg.quality);
    out.extend_from_slice(&frame.pts.to_le_bytes());
    encode_plane(frame.y(), fmt.width, fmt.height, cfg.quality, &mut out);
    encode_plane(
        frame.u(),
        fmt.width / 2,
        fmt.height / 2,
        cfg.quality,
        &mut out,
    );
    encode_plane(
        frame.v(),
        fmt.width / 2,
        fmt.height / 2,
        cfg.quality,
        &mut out,
    );
    out
}

/// Decode a bitstream produced by [`encode_frame`]. Returns `None` on any
/// malformation.
pub fn decode_frame(bitstream: &[u8]) -> Option<Frame> {
    if bitstream.len() < 18 || &bitstream[..4] != MAGIC {
        return None;
    }
    let width = u16::from_le_bytes([bitstream[4], bitstream[5]]) as usize;
    let height = u16::from_le_bytes([bitstream[6], bitstream[7]]) as usize;
    let quality = u16::from_le_bytes([bitstream[8], bitstream[9]]);
    if width == 0 || height == 0 || !width.is_multiple_of(16) || !height.is_multiple_of(16) {
        return None;
    }
    if !(1..=31).contains(&quality) {
        return None;
    }
    let pts = u64::from_le_bytes(bitstream[10..18].try_into().ok()?);
    let fmt = VideoFormat::new(width, height);
    let mut buf = AlignedBuf::zeroed(fmt.frame_bytes());
    let mut pos = 18usize;
    {
        let data = buf.as_mut_slice();
        let (y, chroma) = data.split_at_mut(fmt.y_bytes());
        let (u, v) = chroma.split_at_mut(fmt.c_bytes());
        decode_plane(bitstream, &mut pos, width, height, quality, y)?;
        decode_plane(bitstream, &mut pos, width / 2, height / 2, quality, u)?;
        decode_plane(bitstream, &mut pos, width / 2, height / 2, quality, v)?;
    }
    Some(Frame::new(fmt, pts, ZcBytes::from_aligned(buf)))
}

/// Peak signal-to-noise ratio between two equal-length planes, in dB.
pub fn psnr(a: &[u8], b: &[u8]) -> f64 {
    assert_eq!(a.len(), b.len());
    let mse: f64 = a
        .iter()
        .zip(b)
        .map(|(&x, &y)| {
            let d = x as f64 - y as f64;
            d * d
        })
        .sum::<f64>()
        / a.len() as f64;
    if mse == 0.0 {
        f64::INFINITY
    } else {
        10.0 * (255.0f64 * 255.0 / mse).log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::FrameSource;

    #[test]
    fn encode_decode_roundtrip_preserves_metadata() {
        let frame = FrameSource::new(VideoFormat::TINY, 5).frame_at(3);
        let bits = encode_frame(&frame, &EncoderConfig::default());
        let back = decode_frame(&bits).unwrap();
        assert_eq!(back.format, frame.format);
        assert_eq!(back.pts, frame.pts);
    }

    #[test]
    fn reconstruction_quality_is_high_at_fine_quantization() {
        let frame = FrameSource::new(VideoFormat::TINY, 5).frame_at(0);
        let bits = encode_frame(&frame, &EncoderConfig { quality: 1 });
        let back = decode_frame(&bits).unwrap();
        let q = psnr(frame.y(), back.y());
        assert!(q > 40.0, "luma PSNR {q:.1} dB");
    }

    #[test]
    fn quality_degrades_monotonically_and_size_shrinks() {
        let frame = FrameSource::new(VideoFormat::TINY, 2).frame_at(1);
        let fine_bits = encode_frame(&frame, &EncoderConfig { quality: 2 });
        let coarse_bits = encode_frame(&frame, &EncoderConfig { quality: 31 });
        assert!(coarse_bits.len() < fine_bits.len(), "coarser → smaller");
        let fine = decode_frame(&fine_bits).unwrap();
        let coarse = decode_frame(&coarse_bits).unwrap();
        assert!(psnr(frame.y(), fine.y()) > psnr(frame.y(), coarse.y()));
    }

    #[test]
    fn compresses_the_synthetic_source() {
        let frame = FrameSource::new(VideoFormat::TINY, 7).frame_at(2);
        let bits = encode_frame(&frame, &EncoderConfig::default());
        // the moving grid is deliberately high-frequency content, so the
        // ratio is modest at the default quantizer — but it must compress
        assert!(
            bits.len() < frame.format.frame_bytes() * 7 / 10,
            "{} of {}",
            bits.len(),
            frame.format.frame_bytes()
        );
        // and clearly more at a coarse quantizer
        let coarse = encode_frame(&frame, &EncoderConfig { quality: 31 });
        assert!(coarse.len() < frame.format.frame_bytes() / 2);
    }

    #[test]
    fn decoder_rejects_garbage() {
        assert!(decode_frame(b"").is_none());
        assert!(decode_frame(b"ZMP").is_none());
        assert!(decode_frame(&[0u8; 40]).is_none());
        // valid header, truncated body
        let frame = FrameSource::new(VideoFormat::TINY, 1).frame_at(0);
        let bits = encode_frame(&frame, &EncoderConfig::default());
        assert!(decode_frame(&bits[..30]).is_none());
        // corrupted dims
        let mut bad = bits.clone();
        bad[4] = 7; // width 7: not a macroblock multiple
        assert!(decode_frame(&bad).is_none());
    }

    #[test]
    fn decoder_never_panics_on_mutations() {
        let frame = FrameSource::new(VideoFormat::TINY, 1).frame_at(0);
        let bits = encode_frame(&frame, &EncoderConfig::default());
        for i in (0..bits.len()).step_by(97) {
            let mut mutated = bits.clone();
            mutated[i] ^= 0x5A;
            let _ = decode_frame(&mutated); // must not panic
        }
    }
}
