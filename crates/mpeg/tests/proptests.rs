//! Property tests for the codec: round-trip quality under arbitrary
//! parameters, decoder robustness against arbitrary mutation, GOP chains.

use proptest::prelude::*;

use zc_mpeg::{
    decode_frame, encode_frame, encode_frame_p, EncoderConfig, FrameSource, GopDecoder, GopEncoder,
    VideoFormat,
};

fn tiny_source(seed: u64) -> FrameSource {
    FrameSource::new(VideoFormat::TINY, seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any quality, any frame: intra round trip succeeds with bounded error
    /// that tightens as the quantizer gets finer.
    #[test]
    fn prop_intra_roundtrip(seed in 0u64..1000, index in 0u64..50, quality in 1u16..=31) {
        let frame = tiny_source(seed).frame_at(index);
        let bits = encode_frame(&frame, &EncoderConfig { quality });
        let back = decode_frame(&bits).expect("own bitstream decodes");
        prop_assert_eq!(back.format, frame.format);
        prop_assert_eq!(back.pts, frame.pts);
        let q = zc_mpeg::encoder::psnr(frame.y(), back.y());
        prop_assert!(q > 20.0, "PSNR {q:.1} at quality {quality}");
    }

    /// The decoder never panics on arbitrary single-byte corruptions.
    #[test]
    fn prop_decoder_survives_mutation(seed in 0u64..100, flip in 0usize..100_000, xor in 1u8..=255) {
        let frame = tiny_source(seed).frame_at(0);
        let mut bits = encode_frame(&frame, &EncoderConfig::default());
        let i = flip % bits.len();
        bits[i] ^= xor;
        let _ = decode_frame(&bits); // Some(wrong pixels) or None — no panic
    }

    /// The P-frame decoder never panics on arbitrary corruption either.
    #[test]
    fn prop_p_decoder_survives_mutation(seed in 0u64..100, flip in 0usize..100_000, xor in 1u8..=255) {
        let cfg = EncoderConfig::default();
        let f0 = tiny_source(seed).frame_at(0);
        let recon = decode_frame(&encode_frame(&f0, &cfg)).unwrap();
        let f1 = tiny_source(seed).frame_at(1);
        let (mut bits, _) = encode_frame_p(&f1, &recon, &cfg);
        let i = flip % bits.len();
        bits[i] ^= xor;
        let _ = zc_mpeg::decode_frame_p(&bits, &recon);
    }

    /// GOP chains of arbitrary length and intra period decode with bounded
    /// drift.
    #[test]
    fn prop_gop_chain(seed in 0u64..200, frames in 1usize..12, gop_len in 1usize..6) {
        let cfg = EncoderConfig { quality: 4 };
        let mut enc = GopEncoder::new(cfg, gop_len);
        let mut dec = GopDecoder::new();
        let source = tiny_source(seed);
        for i in 0..frames {
            let frame = source.frame_at(i as u64);
            let (ty, bits) = enc.encode(&frame);
            let out = dec.decode(ty, &bits).expect("chain decodes");
            let q = zc_mpeg::encoder::psnr(frame.y(), out.y());
            prop_assert!(q > 25.0, "frame {i} ({ty:?}): {q:.1} dB");
        }
    }
}
