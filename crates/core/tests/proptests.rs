//! Property tests for the ORB: RPC identity under arbitrary payloads and
//! configurations, and server survival under arbitrary wire garbage.

use std::sync::Arc;

use proptest::prelude::*;

use zc_buffers::{AlignedBuf, ZcBytes};
use zc_cdr::{OctetSeq, ZcOctetSeq};
use zc_orb::{ObjectAdapterExt, Orb, OrbResult, Servant, ServerRequest};
use zc_transport::{SimConfig, SimNetwork, TransportCtx};

struct Mirror;
impl Servant for Mirror {
    fn repo_id(&self) -> &'static str {
        "IDL:prop/Mirror:1.0"
    }
    fn dispatch(&self, op: &str, req: &mut ServerRequest<'_>) -> OrbResult<()> {
        match op {
            // mirrors a mixed-signature request back verbatim
            "mirror" => {
                let nums: Vec<i32> = req.arg()?;
                let blob: ZcOctetSeq = req.arg()?;
                let text: String = req.arg()?;
                let std_blob: OctetSeq = req.arg()?;
                let flag: bool = req.arg()?;
                req.result(&nums)?;
                req.out(&blob)?;
                req.out(&text)?;
                req.out(&std_blob)?;
                req.out(&flag)
            }
            other => req.bad_operation(other),
        }
    }
}

fn fixture(cfg: SimConfig, zc: bool) -> (zc_orb::ObjectRef, zc_orb::ServerHandle, Orb, SimNetwork) {
    let net = SimNetwork::new(cfg);
    let server_orb = Orb::builder().sim(net.clone()).zc(zc).build();
    server_orb.adapter().register("mirror", Arc::new(Mirror));
    let server = server_orb.serve(0).unwrap();
    let client = Orb::builder().sim(net.clone()).zc(zc).build();
    let obj = client
        .resolve(&server.ior_for("mirror", "IDL:prop/Mirror:1.0").unwrap())
        .unwrap();
    (obj, server, client, net)
}

fn configs() -> impl Strategy<Value = (SimConfig, bool)> {
    prop_oneof![
        Just((SimConfig::copying(), false)),
        Just((SimConfig::copying(), true)),
        Just((SimConfig::zero_copy(), true)),
        Just((SimConfig::zero_copy(), false)),
        (0.3f64..1.0).prop_map(|p| (SimConfig::zero_copy_with_speculation(p), true)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A mixed-signature RPC is the identity for arbitrary values under
    /// every stack/negotiation configuration.
    #[test]
    fn prop_rpc_identity(
        (cfg, zc) in configs(),
        nums in proptest::collection::vec(any::<i32>(), 0..50),
        blob_bytes in proptest::collection::vec(any::<u8>(), 0..30_000),
        text in "\\PC{0,100}",
        std_bytes in proptest::collection::vec(any::<u8>(), 0..5_000),
        flag: bool,
    ) {
        let (obj, _server, _client, _net) = fixture(cfg, zc);
        let blob = {
            let mut b = AlignedBuf::with_capacity(blob_bytes.len());
            b.extend_from_slice(&blob_bytes);
            ZcOctetSeq::from_zc(ZcBytes::from_aligned(b))
        };
        let reply = obj
            .request("mirror")
            .arg(&nums).unwrap()
            .arg(&blob).unwrap()
            .arg(&text).unwrap()
            .arg(&OctetSeq(std_bytes.clone())).unwrap()
            .arg(&flag).unwrap()
            .invoke()
            .unwrap();
        let mut r = reply.results();
        prop_assert_eq!(r.next::<Vec<i32>>().unwrap(), nums);
        let back_blob: ZcOctetSeq = r.next().unwrap();
        prop_assert_eq!(&back_blob[..], &blob_bytes[..]);
        prop_assert_eq!(r.next::<String>().unwrap(), text);
        prop_assert_eq!(r.next::<OctetSeq>().unwrap().0, std_bytes);
        prop_assert_eq!(r.next::<bool>().unwrap(), flag);
    }

    /// Arbitrary garbage thrown at a live server never takes it down.
    #[test]
    fn prop_server_survives_garbage(
        frames in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..128), 1..5),
    ) {
        let (obj, server, _client, net) = fixture(SimConfig::zero_copy(), true);
        {
            let mut raw = net.connect(server.port(), TransportCtx::new()).unwrap();
            for f in &frames {
                if raw.send_control(f).is_err() {
                    break;
                }
            }
            // also try garbage on the data lane
            let _ = raw.send_data(&ZcBytes::zeroed(64));
        }
        // the healthy connection still works
        let reply = obj
            .request("mirror")
            .arg(&vec![1i32]).unwrap()
            .arg(&ZcOctetSeq::with_length(8)).unwrap()
            .arg(&"ok".to_string()).unwrap()
            .arg(&OctetSeq(vec![2])).unwrap()
            .arg(&true).unwrap()
            .invoke()
            .unwrap();
        prop_assert_eq!(reply.results().next::<Vec<i32>>().unwrap(), vec![1i32]);
    }

    /// Near-valid GIOP: a correctly handshaken connection sending *real*
    /// request frames with random byte flips or a truncation never panics
    /// the server loop — corruption lands deep in the header/body decoders,
    /// not just at the magic check.
    #[test]
    fn prop_server_survives_mutated_request_streams(
        payload in proptest::collection::vec(any::<u8>(), 0..2048),
        flips in proptest::collection::vec((any::<usize>(), 1u8..=255u8), 1..8),
        cut in any::<usize>(),
        do_truncate: bool,
    ) {
        use zc_cdr::{ByteOrder, CdrEncoder};
        use zc_giop::{GiopVersion, Handshake, MessageType, RequestHeader};

        let (obj, server, _client, net) = fixture(SimConfig::zero_copy(), true);
        {
            let mut raw = net.connect(server.port(), TransportCtx::new()).unwrap();
            // Complete a genuine handshake so the mutated frames reach the
            // GIOP decoders rather than dying at the handshake gate.
            if raw.send_control(&Handshake::local(true).encode()).is_ok()
                && raw.recv_control().is_ok()
            {
                let order = ByteOrder::native();
                let mut enc = CdrEncoder::new(order);
                let hdr = RequestHeader::new(1, b"mirror".to_vec(), "mirror");
                hdr.marshal(&mut enc).unwrap();
                enc.align(8);
                enc.write_raw(&payload);
                let body = enc.finish_stream();
                let mut frames = zc_giop::fragment_frames(
                    GiopVersion::V1_2, order, MessageType::Request, &body, 256);
                let total: usize = frames.iter().map(Vec::len).sum();
                for &(idx, xor) in &flips {
                    if total == 0 { break; }
                    let mut pos = idx % total;
                    for f in frames.iter_mut() {
                        if pos < f.len() {
                            f[pos] ^= xor;
                            break;
                        }
                        pos -= f.len();
                    }
                }
                if do_truncate && !frames.is_empty() {
                    let fi = cut % frames.len();
                    let keep = cut % frames[fi].len().max(1);
                    frames[fi].truncate(keep);
                }
                for f in &frames {
                    if raw.send_control(f).is_err() {
                        break;
                    }
                }
            }
        }
        // the healthy connection still works
        let reply = obj
            .request("mirror")
            .arg(&vec![7i32]).unwrap()
            .arg(&ZcOctetSeq::with_length(8)).unwrap()
            .arg(&"still up".to_string()).unwrap()
            .arg(&OctetSeq(vec![9])).unwrap()
            .arg(&true).unwrap()
            .invoke()
            .unwrap();
        prop_assert_eq!(reply.results().next::<Vec<i32>>().unwrap(), vec![7i32]);
    }
}
