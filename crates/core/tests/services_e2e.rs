//! End-to-end tests for the ORB-hosted services: the naming service and
//! the data-parallel collectives.

use std::sync::Arc;

use zc_buffers::{CopyLayer, CopyMeter, ZcBytes};
use zc_cdr::ZcOctetSeq;
use zc_orb::naming::{install_name_service, is_unbound_name, NamingClient};
use zc_orb::{ObjectAdapterExt, Orb, OrbResult, ParGroup, Servant, ServerRequest};
use zc_transport::{SimConfig, SimNetwork};

struct Doubler;
impl Servant for Doubler {
    fn repo_id(&self) -> &'static str {
        "IDL:svc/Doubler:1.0"
    }
    fn dispatch(&self, op: &str, req: &mut ServerRequest<'_>) -> OrbResult<()> {
        match op {
            "double" => {
                let x: i64 = req.arg()?;
                req.result(&(2 * x))
            }
            // the ParGroup contract: (part, parts, offset, data) -> result
            "sum_part" => {
                let _part: u32 = req.arg()?;
                let _parts: u32 = req.arg()?;
                let _offset: u64 = req.arg()?;
                let data: ZcOctetSeq = req.arg()?;
                req.result(&data.iter().map(|&b| b as u64).sum::<u64>())
            }
            "reverse_part" => {
                let _part: u32 = req.arg()?;
                let _parts: u32 = req.arg()?;
                let _offset: u64 = req.arg()?;
                let data: ZcOctetSeq = req.arg()?;
                let mut rev: Vec<u8> = data.to_vec();
                rev.reverse();
                let mut buf = zc_buffers::AlignedBuf::with_capacity(rev.len());
                buf.extend_from_slice(&rev);
                req.result(&ZcOctetSeq::from_zc(ZcBytes::from_aligned(buf)))
            }
            "first_byte" => {
                let _part: u32 = req.arg()?;
                let _parts: u32 = req.arg()?;
                let _offset: u64 = req.arg()?;
                let data: ZcOctetSeq = req.arg()?;
                req.result(&(data.first().copied().unwrap_or(0) as u32))
            }
            other => req.bad_operation(other),
        }
    }
}

fn cluster() -> (Orb, Orb, zc_orb::ServerHandle) {
    let net = SimNetwork::new(SimConfig::zero_copy());
    let server_orb = Orb::builder().sim(net.clone()).build();
    server_orb.adapter().register("doubler", Arc::new(Doubler));
    let server = server_orb.serve(0).unwrap();
    let client_orb = Orb::builder().sim(net).build();
    (server_orb, client_orb, server)
}

#[test]
fn naming_bind_resolve_roundtrip() {
    let (server_orb, client_orb, server) = cluster();
    install_name_service(&server_orb, &server).unwrap();
    let ns = NamingClient::connect(&client_orb, server.host(), server.port()).unwrap();

    // nothing bound yet
    let err = ns.resolve_name("svc/doubler").unwrap_err();
    assert!(is_unbound_name(&err), "{err:?}");

    // bind and resolve through the service to a working object
    let doubler_ior = server.ior_for("doubler", "IDL:svc/Doubler:1.0").unwrap();
    assert!(!ns.bind("svc/doubler", &doubler_ior).unwrap());
    let obj = ns.resolve_object(&client_orb, "svc/doubler").unwrap();
    let y: i64 = obj
        .request("double")
        .arg(&21i64)
        .unwrap()
        .invoke()
        .unwrap()
        .result()
        .unwrap();
    assert_eq!(y, 42);

    // rebinding reports replacement
    assert!(ns.bind("svc/doubler", &doubler_ior).unwrap());

    // list and unbind
    ns.bind("svc/other", &doubler_ior).unwrap();
    assert_eq!(ns.list().unwrap(), vec!["svc/doubler", "svc/other"]);
    assert!(ns.unbind("svc/other").unwrap());
    assert!(!ns.unbind("svc/other").unwrap());
    assert_eq!(ns.list().unwrap(), vec!["svc/doubler"]);
}

#[test]
fn naming_rejects_malformed_ior_at_bind_time() {
    let (server_orb, client_orb, server) = cluster();
    install_name_service(&server_orb, &server).unwrap();
    // Speak to the service through a raw (untyped) reference, like a buggy
    // client would, and push a malformed IOR string.
    let raw = client_orb
        .resolve(&zc_giop::Ior::new_iiop(
            zc_orb::naming::NAMING_REPO_ID,
            server.host(),
            server.port(),
            zc_orb::naming::NAME_SERVICE_KEY.as_bytes(),
        ))
        .unwrap();
    let err = raw
        .request("bind")
        .arg(&"bad".to_string())
        .unwrap()
        .arg(&"IOR:zz".to_string())
        .unwrap()
        .invoke()
        .unwrap_err();
    assert!(matches!(err, zc_orb::OrbError::System(_)));
    // and the bad name is not listed afterwards
    let ns = NamingClient::connect(&client_orb, server.host(), server.port()).unwrap();
    assert!(ns.list().unwrap().is_empty());
}

#[test]
fn scatter_is_zero_copy_and_complete() {
    let net = SimNetwork::new(SimConfig::zero_copy());
    let meter = CopyMeter::new_shared();
    let server_orb = Orb::builder()
        .sim(net.clone())
        .meter(Arc::clone(&meter))
        .build();
    server_orb.adapter().register("w", Arc::new(Doubler));
    let server = server_orb.serve(0).unwrap();
    let client_orb = Orb::builder().sim(net).meter(Arc::clone(&meter)).build();
    let ior = server.ior_for("w", "IDL:svc/Doubler:1.0").unwrap();

    let group = ParGroup::new(
        (0..4)
            .map(|_| client_orb.resolve_private(&ior).unwrap())
            .collect(),
    );

    // 4 MiB of known content
    let n = 4 << 20;
    let mut buf = zc_buffers::AlignedBuf::zeroed(n);
    for (i, b) in buf.as_mut_slice().iter_mut().enumerate() {
        *b = (i % 251) as u8;
    }
    let data = ZcBytes::from_aligned(buf);
    let expected: u64 = data.iter().map(|&b| b as u64).sum();

    let before = meter.snapshot();
    let sums: Vec<u64> = group.scatter("sum_part", &data).unwrap();
    let delta = meter.snapshot().since(&before);

    assert_eq!(sums.len(), 4);
    assert_eq!(sums.iter().sum::<u64>(), expected);
    assert_eq!(
        delta.bytes(CopyLayer::Marshal) + delta.bytes(CopyLayer::Demarshal),
        0,
        "scatter marshals nothing:\n{}",
        delta.report()
    );
    // The partitioner cuts on page boundaries, so every part is
    // deposit-eligible: zero fallback copies anywhere.
    assert_eq!(
        delta.bytes(CopyLayer::DepositFallback),
        0,
        "page-aligned parts never fall back:\n{}",
        delta.report()
    );
}

#[test]
fn scatter_gather_reassembles_in_order() {
    let (_server_orb, client_orb, server) = cluster();
    let ior = server.ior_for("doubler", "IDL:svc/Doubler:1.0").unwrap();
    let group = ParGroup::new(
        (0..3)
            .map(|_| client_orb.resolve_private(&ior).unwrap())
            .collect(),
    );
    let payload: Vec<u8> = (0..30_000).map(|i| (i % 256) as u8).collect();
    let data = {
        let mut b = zc_buffers::AlignedBuf::with_capacity(payload.len());
        b.extend_from_slice(&payload);
        ZcBytes::from_aligned(b)
    };
    // each worker reverses its part; gather concatenates part-reversals
    let gathered = group.scatter_gather("reverse_part", &data).unwrap();
    assert_eq!(gathered.len(), payload.len());
    let mut expect = Vec::new();
    for (_, part) in group.partition(&data) {
        let mut rev = part.to_vec();
        rev.reverse();
        expect.extend_from_slice(&rev);
    }
    assert_eq!(gathered.as_slice(), &expect[..]);
}

#[test]
fn broadcast_delivers_whole_block_to_every_member() {
    let (_server_orb, client_orb, server) = cluster();
    let ior = server.ior_for("doubler", "IDL:svc/Doubler:1.0").unwrap();
    let group = ParGroup::new(
        (0..5)
            .map(|_| client_orb.resolve_private(&ior).unwrap())
            .collect(),
    );
    let mut buf = zc_buffers::AlignedBuf::zeroed(4096);
    buf.as_mut_slice()[0] = 0xEE;
    let data = ZcBytes::from_aligned(buf);
    let firsts: Vec<u32> = group.broadcast("first_byte", &data).unwrap();
    assert_eq!(firsts, vec![0xEE; 5]);
}

#[test]
fn scatter_worker_failure_propagates() {
    let (_server_orb, client_orb, server) = cluster();
    let ior = server.ior_for("doubler", "IDL:svc/Doubler:1.0").unwrap();
    let group = ParGroup::new(vec![client_orb.resolve_private(&ior).unwrap()]);
    let err = group
        .scatter::<u64>("no_such_op", &ZcBytes::zeroed(100))
        .unwrap_err();
    assert!(matches!(err, zc_orb::OrbError::System(_)));
}
