//! Robustness and composite-type tests: garbage on the wire must never
//! take a server down, and — per §4.1 — "all more complex types like
//! structs with streams or arrays of streams will also be optimized as the
//! communication of the sequence of octets is always handled with the same
//! optimized zero-copy strategy".

use std::sync::Arc;

use zc_buffers::{CopyLayer, CopyMeter};
use zc_cdr::{CdrDecoder, CdrEncoder, CdrMarshal, CdrResult, TypeId, ZcOctetSeq};
use zc_giop::Handshake;
use zc_orb::{ObjectAdapterExt, Orb, OrbResult, Servant, ServerRequest};
use zc_transport::{SimConfig, SimNetwork, TransportCtx};

/// A struct with an embedded stream — the paper's "structs with streams".
#[derive(Debug, Clone, PartialEq)]
struct TaggedFrame {
    stream_id: u32,
    pts: i64,
    pixels: ZcOctetSeq,
    label: String,
}

impl CdrMarshal for TaggedFrame {
    fn type_id() -> TypeId {
        TypeId::Struct
    }
    fn marshal(&self, enc: &mut CdrEncoder) -> CdrResult<()> {
        self.stream_id.marshal(enc)?;
        self.pts.marshal(enc)?;
        self.pixels.marshal(enc)?;
        self.label.marshal(enc)
    }
    fn demarshal(dec: &mut CdrDecoder<'_>) -> CdrResult<Self> {
        Ok(TaggedFrame {
            stream_id: u32::demarshal(dec)?,
            pts: i64::demarshal(dec)?,
            pixels: ZcOctetSeq::demarshal(dec)?,
            label: String::demarshal(dec)?,
        })
    }
}

struct FrameSink;
impl Servant for FrameSink {
    fn repo_id(&self) -> &'static str {
        "IDL:rb/FrameSink:1.0"
    }
    fn dispatch(&self, op: &str, req: &mut ServerRequest<'_>) -> OrbResult<()> {
        match op {
            "swap" => {
                // takes a struct-with-stream, returns it with the label
                // upper-cased — the stream itself is passed by reference
                let mut f: TaggedFrame = req.arg()?;
                f.label = f.label.to_uppercase();
                req.result(&f)
            }
            "burst" => {
                // array of structs with streams
                let frames: Vec<TaggedFrame> = req.arg()?;
                req.result(&(frames.iter().map(|f| f.pixels.len() as u64).sum::<u64>()))
            }
            other => req.bad_operation(other),
        }
    }
}

fn fixture(meter: Arc<CopyMeter>) -> (zc_orb::ObjectRef, zc_orb::ServerHandle, Orb, SimNetwork) {
    let net = SimNetwork::new(SimConfig::zero_copy());
    let server_orb = Orb::builder()
        .sim(net.clone())
        .meter(Arc::clone(&meter))
        .build();
    server_orb.adapter().register("sink", Arc::new(FrameSink));
    let server = server_orb.serve(0).unwrap();
    let client = Orb::builder().sim(net.clone()).meter(meter).build();
    let obj = client
        .resolve(&server.ior_for("sink", "IDL:rb/FrameSink:1.0").unwrap())
        .unwrap();
    (obj, server, client, net)
}

#[test]
fn struct_with_stream_takes_the_deposit_path() {
    let meter = CopyMeter::new_shared();
    let (obj, _server, _client, _net) = fixture(Arc::clone(&meter));
    let frame = TaggedFrame {
        stream_id: 7,
        pts: 12_345,
        pixels: ZcOctetSeq::with_length(2 << 20),
        label: "frame".into(),
    };
    let before = meter.snapshot();
    let back: TaggedFrame = obj
        .request("swap")
        .arg(&frame)
        .unwrap()
        .invoke()
        .unwrap()
        .result()
        .unwrap();
    let delta = meter.snapshot().since(&before);
    assert_eq!(back.label, "FRAME");
    assert_eq!(back.stream_id, 7);
    assert!(
        back.pixels.ptr_eq(&frame.pixels),
        "the embedded stream came back by reference"
    );
    assert_eq!(
        delta.bytes(CopyLayer::Marshal) + delta.bytes(CopyLayer::Demarshal),
        0,
        "struct scalars marshal, the stream does not:\n{}",
        delta.report()
    );
}

#[test]
fn array_of_structs_with_streams() {
    let meter = CopyMeter::new_shared();
    let (obj, _server, _client, _net) = fixture(Arc::clone(&meter));
    let frames: Vec<TaggedFrame> = (0..5)
        .map(|i| TaggedFrame {
            stream_id: i,
            pts: i as i64,
            pixels: ZcOctetSeq::with_length(100_000 + i as usize),
            label: format!("f{i}"),
        })
        .collect();
    let expected: u64 = frames.iter().map(|f| f.pixels.len() as u64).sum();
    let before = meter.snapshot();
    let total: u64 = obj
        .request("burst")
        .arg(&frames)
        .unwrap()
        .invoke()
        .unwrap()
        .result()
        .unwrap();
    let delta = meter.snapshot().since(&before);
    assert_eq!(total, expected);
    assert_eq!(
        delta.bytes(CopyLayer::Marshal),
        0,
        "five streams, all deposited, none marshaled"
    );
}

#[test]
fn garbage_handshake_does_not_kill_the_server() {
    let meter = CopyMeter::new_shared();
    let (obj, server, _client, net) = fixture(Arc::clone(&meter));

    // Raw connections throwing garbage at the acceptor:
    for garbage in [
        &b""[..],
        &b"\x00"[..],
        &b"GIOP\x01\x02\x00\x00\x00\x00\x00\x00"[..], // GIOP before handshake
        &[0xFFu8; 64][..],
    ] {
        let mut conn = net.connect(server.port(), TransportCtx::new()).unwrap();
        let _ = conn.send_control(garbage);
        // server either drops us or never answers; drop and move on
        drop(conn);
    }

    // Partial handshake then silence, then disconnect.
    {
        let conn = net.connect(server.port(), TransportCtx::new()).unwrap();
        drop(conn);
    }

    // Valid handshake followed by garbled GIOP.
    {
        let mut conn = net.connect(server.port(), TransportCtx::new()).unwrap();
        conn.send_control(&Handshake::local(true).encode()).unwrap();
        let _server_hello = conn.recv_control().unwrap();
        conn.send_control(b"NOPE").unwrap();
        drop(conn);
    }

    // The server must still serve well-formed clients.
    let frame = TaggedFrame {
        stream_id: 1,
        pts: 1,
        pixels: ZcOctetSeq::with_length(64),
        label: "ok".into(),
    };
    let back: TaggedFrame = obj
        .request("swap")
        .arg(&frame)
        .unwrap()
        .invoke()
        .unwrap()
        .result()
        .unwrap();
    assert_eq!(back.label, "OK");
}

#[test]
fn truncated_giop_request_is_survivable() {
    let meter = CopyMeter::new_shared();
    let (obj, server, _client, net) = fixture(Arc::clone(&meter));
    {
        let mut conn = net.connect(server.port(), TransportCtx::new()).unwrap();
        conn.send_control(&Handshake::local(true).encode()).unwrap();
        let _hello = conn.recv_control().unwrap();
        // a GIOP header announcing a body that never matches the frame
        let hdr = zc_giop::GiopHeader::new(
            zc_giop::GiopVersion::V1_2,
            zc_cdr::ByteOrder::native(),
            zc_giop::MessageType::Request,
            999, // lies: no body follows
        );
        conn.send_control(&hdr.encode()).unwrap();
        drop(conn);
    }
    // healthy client unaffected
    let frame = TaggedFrame {
        stream_id: 2,
        pts: 2,
        pixels: ZcOctetSeq::with_length(16),
        label: "still alive".into(),
    };
    let back: TaggedFrame = obj
        .request("swap")
        .arg(&frame)
        .unwrap()
        .invoke()
        .unwrap()
        .result()
        .unwrap();
    assert_eq!(back.label, "STILL ALIVE");
}

#[test]
fn rapid_connect_disconnect_churn() {
    let meter = CopyMeter::new_shared();
    let (obj, server, client, net) = fixture(Arc::clone(&meter));
    let _ = client;
    for i in 0..50 {
        let churn = Orb::builder().sim(net.clone()).build();
        let ior = server.ior_for("sink", "IDL:rb/FrameSink:1.0").unwrap();
        let o = churn.resolve(&ior).unwrap();
        if i % 3 == 0 {
            // some of them actually talk before vanishing
            let f = TaggedFrame {
                stream_id: i,
                pts: 0,
                pixels: ZcOctetSeq::with_length(8),
                label: "x".into(),
            };
            let _: TaggedFrame = o
                .request("swap")
                .arg(&f)
                .unwrap()
                .invoke()
                .unwrap()
                .result()
                .unwrap();
        }
        drop(o);
        drop(churn);
    }
    // the long-lived client still works
    let f = TaggedFrame {
        stream_id: 0,
        pts: 0,
        pixels: ZcOctetSeq::with_length(8),
        label: "end".into(),
    };
    let back: TaggedFrame = obj
        .request("swap")
        .arg(&f)
        .unwrap()
        .invoke()
        .unwrap()
        .result()
        .unwrap();
    assert_eq!(back.label, "END");
}
