//! End-to-end recovery under injected faults: the self-healing client
//! (reconnect + at-most-once retry), the circuit breaker, and the
//! per-connection zero-copy → copy graceful degradation.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

use zc_buffers::CopyLayer;
use zc_cdr::ZcOctetSeq;
use zc_giop::SystemExceptionKind;
use zc_orb::{
    ConnTuning, ObjectAdapterExt, Orb, OrbError, OrbResult, RetryPolicy, Servant, ServerHandle,
    ServerRequest,
};
use zc_trace::Telemetry;
use zc_transport::{FaultPlan, FaultSide, SimConfig, SimNetwork};

/// A servant that counts how many times each operation really executed —
/// the ground truth for at-most-once assertions.
struct Counter {
    bumps: AtomicU32,
    gets: AtomicU32,
    echoes: AtomicU32,
    naps: AtomicU32,
}

impl Counter {
    fn new() -> Arc<Counter> {
        Arc::new(Counter {
            bumps: AtomicU32::new(0),
            gets: AtomicU32::new(0),
            echoes: AtomicU32::new(0),
            naps: AtomicU32::new(0),
        })
    }
}

impl Servant for Counter {
    fn repo_id(&self) -> &'static str {
        "IDL:zcorba/Counter:1.0"
    }
    fn dispatch(&self, op: &str, req: &mut ServerRequest<'_>) -> OrbResult<()> {
        match op {
            // Non-idempotent: every execution changes state.
            "bump" => {
                let n = self.bumps.fetch_add(1, Ordering::SeqCst) + 1;
                req.result(&n)
            }
            // Idempotent: safe to execute twice.
            "get" => {
                self.gets.fetch_add(1, Ordering::SeqCst);
                req.result(&self.bumps.load(Ordering::SeqCst))
            }
            // ZC payload echo: returns a checksum so the test can verify
            // the deposited bytes arrived intact on every path.
            "sum" => {
                self.echoes.fetch_add(1, Ordering::SeqCst);
                let data: ZcOctetSeq = req.arg()?;
                let sum: u64 = data.iter().map(|&b| b as u64).sum();
                req.result(&sum)
            }
            // Sleeps `ms` then answers — the timeout guinea pig.
            "nap" => {
                self.naps.fetch_add(1, Ordering::SeqCst);
                let ms: u32 = req.arg()?;
                std::thread::sleep(Duration::from_millis(ms as u64));
                req.result(&ms)
            }
            other => req.bad_operation(other),
        }
    }
}

struct Fixture {
    net: SimNetwork,
    counter: Arc<Counter>,
    _server_orb: Orb,
    server: ServerHandle,
    client: Orb,
    telemetry: Arc<Telemetry>,
}

fn fixture_with(tuning: ConnTuning, retry: RetryPolicy) -> Fixture {
    let net = SimNetwork::new(SimConfig::zero_copy());
    let telemetry = Telemetry::with_capacity(4096);
    // One meter for both ends, as the experiments wire it: copy accounting
    // must see the receiver's DepositFallback as well as the sender's
    // Marshal bytes.
    let meter = zc_buffers::CopyMeter::new_shared();
    let counter = Counter::new();
    let server_orb = Orb::builder()
        .sim(net.clone())
        .tuning(tuning)
        .meter(Arc::clone(&meter))
        .telemetry(Arc::clone(&telemetry))
        .build();
    server_orb
        .adapter()
        .register("counter", Arc::clone(&counter) as Arc<dyn Servant>);
    let server = server_orb.serve(0).unwrap();
    let client = Orb::builder()
        .sim(net.clone())
        .tuning(tuning)
        .retry(retry)
        .meter(meter)
        .telemetry(Arc::clone(&telemetry))
        .build();
    Fixture {
        net,
        counter,
        _server_orb: server_orb,
        server,
        client,
        telemetry,
    }
}

fn fixture() -> Fixture {
    fixture_with(ConnTuning::default(), RetryPolicy::default())
}

fn resolve(f: &Fixture) -> zc_orb::ObjectRef {
    f.client
        .resolve(
            &f.server
                .ior_for("counter", "IDL:zcorba/Counter:1.0")
                .unwrap(),
        )
        .unwrap()
}

#[test]
fn send_failure_reconnects_and_retries_any_operation() {
    let f = fixture();
    let obj = resolve(&f);
    // Warm the connection so the cut hits an established wire.
    let n: u32 = obj.request("bump").invoke().unwrap().result().unwrap();
    assert_eq!(n, 1);

    // Sever the client's wire on its very next sent frame: the send
    // itself fails, so the request provably never reached the server and
    // even a NON-idempotent operation may retry transparently.
    f.net
        .inject_faults(FaultPlan::cut_after(0).on(FaultSide::Client));
    let n: u32 = obj.request("bump").invoke().unwrap().result().unwrap();
    assert_eq!(n, 2);
    assert_eq!(
        f.counter.bumps.load(Ordering::SeqCst),
        2,
        "exactly-one execution per logical call"
    );

    let m = f.telemetry.metrics().snapshot();
    assert!(m.retries >= 1, "expected a retry, metrics: {m:?}");
    assert!(m.reconnects >= 1, "expected a reconnect, metrics: {m:?}");

    // The healed connection keeps working without further ceremony.
    let n: u32 = obj.request("bump").invoke().unwrap().result().unwrap();
    assert_eq!(n, 3);
}

#[test]
fn reply_loss_retries_idempotent_operation_transparently() {
    let f = fixture();
    let obj = resolve(&f);
    let _: u32 = obj.request("bump").invoke().unwrap().result().unwrap();

    // Sever the SERVER's wire on its next sent frame: the request is
    // dispatched, but the reply dies on the way back. `get` is declared
    // idempotent, so the client may transparently re-ask.
    f.net
        .inject_faults(FaultPlan::cut_after(0).on(FaultSide::Server));
    let n: u32 = obj
        .request("get")
        .idempotent()
        .invoke()
        .unwrap()
        .result()
        .unwrap();
    assert_eq!(n, 1, "state observed correctly despite the lost reply");
    assert!(
        f.counter.gets.load(Ordering::SeqCst) >= 1,
        "the idempotent op ran at least once"
    );
    let m = f.telemetry.metrics().snapshot();
    assert!(m.retries >= 1, "expected a retry, metrics: {m:?}");
}

#[test]
fn reply_loss_on_non_idempotent_op_surfaces_comm_failure_maybe() {
    let f = fixture();
    let obj = resolve(&f);
    let _: u32 = obj.request("bump").invoke().unwrap().result().unwrap();
    assert_eq!(f.counter.bumps.load(Ordering::SeqCst), 1);

    // Reply dies after dispatch; `bump` is NOT idempotent, so CORBA's
    // at-most-once rule forbids a retry: the client must see COMM_FAILURE
    // with completion status MAYBE, and the server must NOT run it twice.
    f.net
        .inject_faults(FaultPlan::cut_after(0).on(FaultSide::Server));
    let err = obj
        .request("bump")
        .invoke()
        .expect_err("lost reply on non-idempotent op must fail");
    match err {
        OrbError::System(ex) => {
            assert_eq!(ex.kind, SystemExceptionKind::CommFailure);
            assert_eq!(ex.completed, 2, "completion status MAYBE");
        }
        other => panic!("expected COMM_FAILURE, got {other:?}"),
    }
    assert_eq!(
        f.counter.bumps.load(Ordering::SeqCst),
        2,
        "dispatched once for the failed call — never duplicated"
    );
}

#[test]
fn zero_copy_degrades_to_copy_and_recovers() {
    // Small window and probe cadence keep the test brisk.
    let tuning = ConnTuning {
        degrade_window: 4,
        degrade_threshold: 0.5,
        probe_interval: 3,
        ..ConnTuning::default()
    };
    let f = fixture_with(tuning, RetryPolicy::default());
    let obj = resolve(&f);
    let payload: Vec<u8> = (0..48 * 1024).map(|i| (i % 251) as u8).collect();
    let expect: u64 = payload.iter().map(|&b| b as u64).sum();
    let seq = ZcOctetSeq::copy_from_slice(&payload, &f.client.meter());
    let call = |tag: &str| {
        let got: u64 = obj
            .request("sum")
            .arg(&seq)
            .unwrap()
            .invoke()
            .unwrap_or_else(|e| panic!("{tag}: {e}"))
            .result()
            .unwrap();
        assert_eq!(got, expect, "{tag}: payload corrupted");
    };

    // Healthy zero-copy phase.
    call("healthy");
    assert!(obj.is_zero_copy());

    // Force every receive-side speculation on the server to miss: the
    // server's health reports push the client's deposit sender into
    // degraded (inline-marshal) mode. Payloads stay intact throughout —
    // a speculation miss costs a metered DepositFallback copy, never data.
    f.net
        .inject_faults(FaultPlan::spec_miss(1.0).on(FaultSide::Server));
    for i in 0..8 {
        call(&format!("degrading #{i}"));
    }
    let m = f.telemetry.metrics().snapshot();
    assert!(
        m.degradations >= 1,
        "expected a degradation, metrics: {m:?}"
    );
    let meter = f.client.meter().snapshot();
    assert!(
        meter.bytes(CopyLayer::DepositFallback) > 0,
        "forced misses must be accounted as DepositFallback copies"
    );
    let fallback_before = meter.bytes(CopyLayer::DepositFallback);
    let marshal_before = f.client.meter().snapshot().bytes(CopyLayer::Marshal);

    // While degraded, payload travels inline (Marshal copies rise), and
    // only every `probe_interval`-th message speculates again.
    for i in 0..4 {
        call(&format!("degraded #{i}"));
    }
    let marshal_after = f.client.meter().snapshot().bytes(CopyLayer::Marshal);
    assert!(
        marshal_after > marshal_before,
        "degraded sends must marshal the payload inline"
    );

    // Heal the network: the next probe's deposits land cleanly and the
    // connection upgrades back to zero-copy.
    f.net.clear_faults();
    for i in 0..12 {
        call(&format!("recovering #{i}"));
    }
    let m = f.telemetry.metrics().snapshot();
    assert!(m.upgrades >= 1, "expected an upgrade, metrics: {m:?}");
    let _ = fallback_before;

    // All recovery counters are visible in the rendered telemetry table.
    let table = f.client.telemetry_snapshot().text_table();
    assert!(table.contains("degradations"), "table:\n{table}");
    assert!(table.contains("upgrades"), "table:\n{table}");
}

#[test]
fn breaker_opens_fails_fast_and_recovers_after_cooldown() {
    let retry = RetryPolicy {
        max_attempts: 2,
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(2),
        breaker_threshold: 3,
        breaker_cooldown: Duration::from_millis(50),
        ..RetryPolicy::default()
    };
    let f = fixture_with(ConnTuning::default(), retry);
    let obj = resolve(&f);
    let _: u32 = obj.request("bump").invoke().unwrap().result().unwrap();

    // Cut the client's wire AND refuse re-dials: every recovery attempt
    // fails, consecutive dial failures mount, the breaker opens.
    f.net.inject_faults(FaultPlan {
        cut_after_frames: Some(0),
        refuse_connects: true,
        ..FaultPlan::default().on(FaultSide::Client)
    });
    let mut transient_seen = false;
    for _ in 0..6 {
        match obj.request("get").idempotent().invoke() {
            Err(OrbError::System(ex)) if ex.kind == SystemExceptionKind::Transient => {
                transient_seen = true;
                break;
            }
            Err(_) => continue,
            Ok(_) => panic!("call cannot succeed while the endpoint refuses connects"),
        }
    }
    assert!(
        transient_seen,
        "breaker must eventually fail fast with TRANSIENT"
    );
    let m = f.telemetry.metrics().snapshot();
    assert!(
        m.breaker_opens >= 1,
        "expected breaker to open, metrics: {m:?}"
    );

    // Heal the network and outwait the cooldown: the half-open trial
    // dials a fresh connection and the endpoint recovers.
    f.net.clear_faults();
    std::thread::sleep(Duration::from_millis(80));
    let n: u32 = obj
        .request("get")
        .idempotent()
        .invoke()
        .unwrap()
        .result()
        .unwrap();
    assert_eq!(n, 1);
}

#[test]
fn timed_out_call_is_never_retried_even_when_idempotent() {
    let f = fixture();
    let obj = resolve(&f);

    // `nap` sleeps past the deadline: the call times out. A timed-out
    // request may be executing right now, so it is NEVER retried — not
    // even when idempotent — and the poisoned connection is quarantined.
    let err = obj
        .request("nap")
        .arg(&300u32)
        .unwrap()
        .idempotent()
        .invoke_timeout(Duration::from_millis(40))
        .expect_err("the nap outlasts the deadline");
    assert!(
        matches!(
            err,
            OrbError::Transport(zc_transport::TransportError::Timeout)
        ),
        "timeouts surface as timeouts, not retries: {err:?}"
    );
    // Give the server time to finish the single dispatch, then verify no
    // duplicate execution ever happened.
    std::thread::sleep(Duration::from_millis(400));
    assert_eq!(
        f.counter.naps.load(Ordering::SeqCst),
        1,
        "a timed-out call must not be re-dispatched"
    );

    // The quarantine removed the poisoned connection from the cache: a
    // fresh resolve dials a healthy connection and calls work again.
    let obj2 = resolve(&f);
    let n: u32 = obj2.request("bump").invoke().unwrap().result().unwrap();
    assert_eq!(n, 1);
}
