//! End-to-end failover over replicated object groups, plus the admission
//! gate's reserved control lane: kill a primary mid-stream and prove the
//! client rotates to a backup profile under at-most-once rules, on both
//! the simulated and the real TCP transport.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

use zc_cdr::ZcOctetSeq;
use zc_giop::Ior;
use zc_orb::{
    AdmissionConfig, ObjectAdapterExt, Orb, OrbError, OrbResult, RetryPolicy, Servant,
    ServerHandle, ServerRequest, TelemetryClient,
};
use zc_trace::Telemetry;
use zc_transport::{FaultPlan, SimConfig, SimNetwork};

const REPO_ID: &str = "IDL:zcorba/Replica:1.0";

/// A servant that tags replies with its replica name and counts real
/// executions — the ground truth for at-most-once and routing assertions.
struct Replica {
    name: &'static str,
    bumps: AtomicU32,
    gets: AtomicU32,
}

impl Replica {
    fn new(name: &'static str) -> Arc<Replica> {
        Arc::new(Replica {
            name,
            bumps: AtomicU32::new(0),
            gets: AtomicU32::new(0),
        })
    }
}

impl Servant for Replica {
    fn repo_id(&self) -> &'static str {
        REPO_ID
    }
    fn dispatch(&self, op: &str, req: &mut ServerRequest<'_>) -> OrbResult<()> {
        match op {
            // Non-idempotent: every execution changes state.
            "bump" => {
                self.bumps.fetch_add(1, Ordering::SeqCst);
                req.result(&self.name.to_string())
            }
            // Idempotent read.
            "get" => {
                self.gets.fetch_add(1, Ordering::SeqCst);
                req.result(&self.name.to_string())
            }
            // Bulk deposit sink (exercises the zero-copy path under
            // admission control).
            "sum" => {
                let data: ZcOctetSeq = req.arg()?;
                let sum: u64 = data.iter().map(|&b| b as u64).sum();
                req.result(&sum)
            }
            // Sleeps `ms` then answers — occupies a dispatch slot.
            "nap" => {
                let ms: u32 = req.arg()?;
                std::thread::sleep(Duration::from_millis(ms as u64));
                req.result(&ms)
            }
            other => req.bad_operation(other),
        }
    }
}

struct Member {
    replica: Arc<Replica>,
    server: Option<ServerHandle>,
    _orb: Orb,
}

/// Two replicas on one sim network plus a merged group IOR.
fn sim_group(retry: RetryPolicy) -> (SimNetwork, Vec<Member>, Ior, Orb) {
    let net = SimNetwork::new(SimConfig::zero_copy());
    let mut members = Vec::new();
    let mut iors = Vec::new();
    for name in ["primary", "backup"] {
        let replica = Replica::new(name);
        let orb = Orb::builder().sim(net.clone()).build();
        orb.adapter()
            .register("replica", Arc::clone(&replica) as Arc<dyn Servant>);
        let server = orb.serve(0).unwrap();
        iors.push(server.ior_for("replica", REPO_ID).unwrap());
        members.push(Member {
            replica,
            server: Some(server),
            _orb: orb,
        });
    }
    let group = Ior::merge_group(&iors).unwrap();
    let client = Orb::builder().sim(net.clone()).retry(retry).build();
    (net, members, group, client)
}

fn call_get(obj: &zc_orb::ObjectRef) -> OrbResult<String> {
    obj.request("get").idempotent().invoke()?.result()
}

fn call_bump(obj: &zc_orb::ObjectRef) -> OrbResult<String> {
    obj.request("bump").invoke()?.result()
}

#[test]
fn group_ior_binds_primary_first() {
    let (_net, members, group, client) = sim_group(RetryPolicy::default());
    let obj = client.resolve(&group).unwrap();
    assert_eq!(call_get(&obj).unwrap(), "primary");
    assert_eq!(members[0].replica.gets.load(Ordering::SeqCst), 1);
    assert_eq!(members[1].replica.gets.load(Ordering::SeqCst), 0);
}

#[test]
fn kill_primary_mid_stream_fails_over_idempotent_sim() {
    let (net, mut members, group, client) = sim_group(RetryPolicy::default());
    let obj = client.resolve(&group).unwrap();
    assert_eq!(call_get(&obj).unwrap(), "primary");

    // Kill the primary mid-stream: stop its acceptor (reconnects will be
    // refused) and sever the established connection at its next frame.
    members[0].server.take().unwrap().shutdown();
    net.inject_faults(FaultPlan::cut_after(0));

    // One logical call: the send fails, recovery reconnects, the primary
    // refuses, and rotation lands the retry on the backup.
    assert_eq!(call_get(&obj).unwrap(), "backup");
    // Routing is sticky once failed over: no more primary attempts.
    assert_eq!(call_get(&obj).unwrap(), "backup");
    assert!(members[1].replica.gets.load(Ordering::SeqCst) >= 2);
}

#[test]
fn non_idempotent_ops_never_double_execute_across_failover() {
    let (net, mut members, group, client) = sim_group(RetryPolicy::default());
    let obj = client.resolve(&group).unwrap();

    let mut successes = 0u32;
    let mut failures = 0u32;
    for round in 0..6 {
        if round == 2 {
            members[0].server.take().unwrap().shutdown();
            net.inject_faults(FaultPlan::cut_after(0));
        }
        match call_bump(&obj) {
            Ok(_) => successes += 1,
            Err(_) => failures += 1,
        }
    }
    let executed = members[0].replica.bumps.load(Ordering::SeqCst)
        + members[1].replica.bumps.load(Ordering::SeqCst);
    // At-most-once: every success executed exactly once, every failure at
    // most once — the cut send provably never dispatched, so rotation is
    // allowed even for non-idempotent ops, and nothing runs twice.
    assert_eq!(successes + failures, 6);
    assert!(
        executed >= successes && executed <= successes + failures,
        "executed {executed}, successes {successes}, failures {failures}"
    );
    assert!(
        members[1].replica.bumps.load(Ordering::SeqCst) > 0,
        "failover never reached the backup"
    );
}

#[test]
fn breaker_open_primary_fails_over_within_one_attempt() {
    let retry = RetryPolicy {
        breaker_threshold: 1,
        breaker_cooldown: Duration::from_secs(60),
        ..RetryPolicy::default()
    };
    let (net, mut members, group, client) = sim_group(retry);
    let obj = client.resolve(&group).unwrap();
    assert_eq!(call_get(&obj).unwrap(), "primary");

    members[0].server.take().unwrap().shutdown();
    net.inject_faults(FaultPlan::cut_after(0));
    // This call records the primary failure; threshold 1 opens its breaker.
    assert_eq!(call_get(&obj).unwrap(), "backup");

    // A freshly resolved reference must skip the open-breaker primary at
    // bind time and answer from the backup on the first attempt.
    let fresh = client.resolve(&group).unwrap();
    assert_eq!(call_get(&fresh).unwrap(), "backup");
}

#[test]
fn sticky_primary_reprobe_fails_back_when_primary_returns() {
    // Disable fail-back first: routing must stay on the backup.
    let no_reprobe = RetryPolicy {
        reprobe_interval: 0,
        ..RetryPolicy::default()
    };
    let (net, mut members, group, client) = sim_group(no_reprobe);
    let obj = client.resolve(&group).unwrap();
    assert_eq!(call_get(&obj).unwrap(), "primary");
    members[0].server.take().unwrap().shutdown();
    net.inject_faults(FaultPlan::cut_after(0));
    for _ in 0..8 {
        assert_eq!(call_get(&obj).unwrap(), "backup");
    }

    // Now with fail-back after 3 backup successes: once the primary is
    // listening again, the proxy re-probes and routing returns to it.
    let reprobe = RetryPolicy {
        reprobe_interval: 3,
        ..RetryPolicy::default()
    };
    let (net, mut members, group, client) = sim_group(reprobe);
    let obj = client.resolve(&group).unwrap();
    assert_eq!(call_get(&obj).unwrap(), "primary");
    let primary_orb = members[0]._orb.clone();
    let primary_port = members[0].server.as_ref().unwrap().port();
    members[0].server.take().unwrap().shutdown();
    net.inject_faults(FaultPlan::cut_after(0));
    assert_eq!(call_get(&obj).unwrap(), "backup");

    // Primary comes back on its old port.
    let revived = primary_orb.serve(primary_port).unwrap();
    let mut answers = Vec::new();
    for _ in 0..8 {
        answers.push(call_get(&obj).unwrap());
    }
    assert!(
        answers.iter().any(|a| a == "primary"),
        "no fail-back to the revived primary: {answers:?}"
    );
    revived.shutdown();
}

#[test]
fn kill_primary_mid_stream_fails_over_tcp() {
    let mut members = Vec::new();
    let mut iors = Vec::new();
    for name in ["primary", "backup"] {
        let replica = Replica::new(name);
        let orb = Orb::builder().tcp().build();
        orb.adapter()
            .register("replica", Arc::clone(&replica) as Arc<dyn Servant>);
        let server = orb.serve(0).unwrap();
        iors.push(server.ior_for("replica", REPO_ID).unwrap());
        members.push(Member {
            replica,
            server: Some(server),
            _orb: orb,
        });
    }
    let group = Ior::merge_group(&iors).unwrap();
    let client = Orb::builder().tcp().build();
    let obj = client.resolve(&group).unwrap();
    assert_eq!(call_get(&obj).unwrap(), "primary");

    // Kill the primary mid-stream: its acceptor stops, and the in-flight
    // connection is poisoned by a timed-out call (the servant stalls past
    // the deadline, the conn is quarantined — real TCP has no fault
    // injection, so the stall plays the role of the dead peer).
    members[0].server.take().unwrap().shutdown();
    let stalled = obj
        .request("nap")
        .arg(&5_000u32)
        .unwrap()
        .idempotent()
        .invoke_timeout(Duration::from_millis(50));
    assert!(stalled.is_err(), "stalled call must time out");

    // The next idempotent call reconnects, the primary refuses, and
    // rotation answers from the backup — within one retry budget.
    assert_eq!(call_get(&obj).unwrap(), "backup");
    assert_eq!(members[1].replica.gets.load(Ordering::SeqCst), 1);
}

#[test]
fn admission_sheds_bulk_while_reserved_lane_answers() {
    let net = SimNetwork::new(SimConfig::zero_copy());
    let telemetry = Telemetry::with_capacity(1024);
    // Two dispatch slots, one reserved for the control plane: a single
    // long-running data call saturates the data budget.
    let server_orb = Orb::builder()
        .sim(net.clone())
        .telemetry(Arc::clone(&telemetry))
        .admission(AdmissionConfig::bounded(2, 256 << 10))
        .build();
    let replica = Replica::new("only");
    server_orb
        .adapter()
        .register("replica", Arc::clone(&replica) as Arc<dyn Servant>);
    let server = server_orb.serve(0).unwrap();
    let ior = server.ior_for("replica", REPO_ID).unwrap();
    let client = Orb::builder()
        .sim(net.clone())
        .retry(RetryPolicy::none())
        .build();

    // Occupy the only data slot with a nap on a private connection.
    let napper = client.resolve_private(&ior).unwrap();
    let nap = std::thread::spawn(move || {
        napper
            .request("nap")
            .arg(&400u32)
            .unwrap()
            .invoke_timeout(Duration::from_secs(5))
            .and_then(|r| r.result::<u32>())
    });
    std::thread::sleep(Duration::from_millis(80));

    // A bulk deposit on a second connection must be shed, TRANSIENT with
    // completed = NO, before any deposit pages are pinned.
    let bulk = client.resolve_private(&ior).unwrap();
    let payload = ZcOctetSeq::with_length(64 << 10);
    let shed = bulk
        .request("sum")
        .arg(&payload)
        .unwrap()
        .invoke()
        .map(|_| ());
    match shed {
        Err(OrbError::System(ex)) => {
            assert!(zc_orb::admission::is_shed(&ex), "wrong exception: {ex:?}");
        }
        other => panic!("expected a shed, got {other:?}"),
    }

    // The reserved lane still answers while the data plane sheds.
    let tc = TelemetryClient::connect(&client, server.host(), server.port()).unwrap();
    assert_eq!(tc.ping().unwrap(), 1);

    // The napper finishes untouched; afterwards the slot frees and bulk
    // calls are admitted again.
    assert_eq!(nap.join().unwrap().unwrap(), 400);
    let sum: u64 = bulk
        .request("sum")
        .arg(&payload)
        .unwrap()
        .invoke()
        .unwrap()
        .result()
        .unwrap();
    assert_eq!(sum, payload.iter().map(|&b| b as u64).sum::<u64>());
    assert!(telemetry.metrics().sheds.get() >= 1);
    server.shutdown();
}
