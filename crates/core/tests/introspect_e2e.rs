//! End-to-end tests for the in-band introspection plane: the reserved
//! `_ZcTelemetry` object must stay answerable while the server is
//! saturated with bulk zero-copy traffic, and its snapshots must be
//! self-consistent (counters monotone across polls, watermarks at or
//! above every instantaneous value).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use zc_cdr::ZcOctetSeq;
use zc_orb::{
    ObjectAdapterExt, Orb, OrbResult, Servant, ServerRequest, TelemetryClient, MAX_TIMELINES,
};
use zc_trace::Telemetry;
use zc_transport::{SimConfig, SimNetwork};

const BULK_REPO_ID: &str = "IDL:zcorba/test/BulkSink:1.0";

struct BulkSink;

impl Servant for BulkSink {
    fn repo_id(&self) -> &'static str {
        BULK_REPO_ID
    }
    fn dispatch(&self, op: &str, req: &mut ServerRequest<'_>) -> OrbResult<()> {
        match op {
            "push" => {
                let data: ZcOctetSeq = req.arg()?;
                req.result(&(data.len() as u32))
            }
            other => req.bad_operation(other),
        }
    }
}

/// Pull `"key":<number>` out of a JSON-lines snapshot (first occurrence).
fn json_num(text: &str, key: &str) -> f64 {
    let needle = format!("\"{key}\":");
    let at = text
        .find(&needle)
        .unwrap_or_else(|| panic!("{key} missing in {text}"));
    let rest = &text[at + needle.len()..];
    let end = rest
        .find(|c: char| c != '-' && c != '.' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end]
        .parse()
        .unwrap_or_else(|_| panic!("bad number for {key}"))
}

/// Saturate `server` with bulk pushes from `load_orb` while polling its
/// `_ZcTelemetry` object through `poll_orb`; returns after asserting
/// liveness, monotonicity, and watermark consistency.
fn saturate_and_poll(
    server_orb: &Orb,
    server: &zc_orb::ServerHandle,
    load_orb: Orb,
    poll_orb: &Orb,
) {
    let ior = server.ior_for("bulk", BULK_REPO_ID).expect("bulk ior");
    let obj = load_orb.resolve(&ior).expect("resolve bulk");

    let stop = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&stop);
    let pusher = std::thread::spawn(move || {
        let payload = ZcOctetSeq::with_length(256 << 10);
        let mut pushed = 0u64;
        while !flag.load(Ordering::Relaxed) {
            let n: u32 = obj
                .request("push")
                .arg(&payload)
                .expect("marshal")
                .invoke()
                .expect("push under load")
                .result()
                .expect("push result");
            assert_eq!(n as usize, payload.len());
            pushed += 1;
        }
        pushed
    });

    let tc = TelemetryClient::connect(poll_orb, server.host(), server.port())
        .expect("connect telemetry");
    assert_eq!(tc.ping().expect("ping under load"), 1);

    // Poll repeatedly while the bulk traffic runs: the management object
    // must answer, and its counters must be monotone poll to poll.
    let mut last_rx = 0.0f64;
    let mut last_wire = 0.0f64;
    for _ in 0..5 {
        let snap = tc.snapshot_json().expect("snapshot_json under load");
        let rx = json_num(&snap, "value"); // first counter line is requests_sent
        assert!(rx >= 0.0);
        let req_rx = {
            let at = snap
                .find("\"name\":\"requests_received\"")
                .expect("requests_received line");
            json_num(&snap[at..], "value")
        };
        assert!(
            req_rx >= last_rx,
            "requests_received went backwards: {req_rx} < {last_rx}"
        );
        last_rx = req_rx;
        let wire = json_num(&snap, "wire_bytes_recv");
        assert!(wire >= last_wire, "wire counter went backwards");
        last_wire = wire;

        // Watermark consistency: every gauge's peak ≥ its current value,
        // in the very same snapshot.
        for gauge in [
            "inflight",
            "conns",
            "degraded_conns",
            "breakers_open",
            "pool_retained",
        ] {
            let cur = json_num(&snap, gauge);
            let peak = json_num(&snap, &format!("{gauge}_peak"));
            assert!(peak >= cur, "{gauge}: peak {peak} < current {cur}");
        }
        std::thread::sleep(std::time::Duration::from_millis(30));
    }

    // The other render formats stay live under load too.
    let text = tc.snapshot_text().expect("text under load");
    assert!(text.contains("zcorba telemetry"), "{text}");
    assert!(text.contains("-- load ("), "{text}");
    let prom = tc.prometheus().expect("prometheus under load");
    assert!(
        prom.contains("# TYPE zcorba_requests_received_total counter"),
        "{prom}"
    );
    assert!(prom.contains("zcorba_req_per_s"), "{prom}");
    let tl = tc.timelines(MAX_TIMELINES).expect("timelines under load");
    assert!(!tl.is_empty());

    stop.store(true, Ordering::Relaxed);
    let pushed = pusher.join().expect("pusher");
    assert!(pushed > 0, "load generator made no calls");

    // Cross-check against the server's own in-process snapshot: the polled
    // counter can only lag it, never exceed it.
    let inproc = server_orb.telemetry_snapshot();
    assert!(inproc.metrics.requests_received as f64 >= last_rx);
    assert!(inproc.load.inflight.peak >= inproc.load.inflight.current);
    assert!(inproc.load.conns.peak >= inproc.load.conns.current);
}

#[test]
fn sim_server_answers_telemetry_polls_under_bulk_load() {
    let net = SimNetwork::new(SimConfig::zero_copy());
    let tele = Telemetry::with_capacity(2048);
    let server_orb = Orb::builder()
        .sim(net.clone())
        .telemetry(Arc::clone(&tele))
        .build();
    server_orb.adapter().register("bulk", Arc::new(BulkSink));
    let server = server_orb.serve(0).expect("serve sim");
    let load_orb = Orb::builder().sim(net.clone()).build();
    let poll_orb = Orb::builder().sim(net.clone()).build();
    saturate_and_poll(&server_orb, &server, load_orb, &poll_orb);
    server.shutdown();
}

#[test]
fn tcp_server_answers_telemetry_polls_under_bulk_load() {
    let tele = Telemetry::with_capacity(2048);
    let server_orb = Orb::builder().tcp().telemetry(Arc::clone(&tele)).build();
    server_orb.adapter().register("bulk", Arc::new(BulkSink));
    let server = server_orb.serve(0).expect("serve tcp");
    let load_orb = Orb::builder().tcp().build();
    let poll_orb = Orb::builder().tcp().build();
    saturate_and_poll(&server_orb, &server, load_orb, &poll_orb);
    server.shutdown();
}

#[test]
fn every_orb_auto_registers_the_reserved_telemetry_object() {
    let net = SimNetwork::new(SimConfig::zero_copy());
    // No explicit telemetry, no registrations: a fresh ORB still serves
    // the management object under its reserved key.
    let server_orb = Orb::builder().sim(net.clone()).build();
    assert!(
        server_orb
            .adapter()
            .find(zc_cdr::wire::ZC_TELEMETRY_KEY)
            .is_some(),
        "_ZcTelemetry not auto-registered"
    );
    let server = server_orb.serve(0).expect("serve");
    let client = Orb::builder().sim(net.clone()).build();
    let tc = TelemetryClient::connect(&client, server.host(), server.port()).expect("connect");
    assert_eq!(tc.ping().expect("ping"), 1);
    // Telemetry is disabled by default: the snapshot still renders (meter
    // and pool are tracked unconditionally), flagged as disabled.
    let snap = tc.snapshot_json().expect("snapshot");
    assert!(snap.contains("\"enabled\":false"), "{snap}");
    assert!(snap.contains("\"section\":\"pool\""), "{snap}");
    let tl = tc.timelines(4).expect("timelines");
    assert!(tl.contains("telemetry disabled"), "{tl}");
    server.shutdown();
}

#[test]
fn telemetry_polls_survive_copying_stack() {
    // The introspection plane must not depend on the zero-copy machinery:
    // a copying (conventional CDR) network still serves every operation.
    let net = SimNetwork::new(SimConfig::copying());
    let tele = Telemetry::with_capacity(256);
    let server_orb = Orb::builder()
        .sim(net.clone())
        .telemetry(Arc::clone(&tele))
        .build();
    let server = server_orb.serve(0).expect("serve");
    let client = Orb::builder().sim(net.clone()).build();
    let tc = TelemetryClient::connect(&client, server.host(), server.port()).expect("connect");
    assert_eq!(tc.ping().expect("ping"), 1);
    let prom = tc.prometheus().expect("prometheus");
    assert!(
        prom.contains("zcorba_trace_events_recorded_total"),
        "{prom}"
    );
    let text = tc.snapshot_text().expect("text");
    assert!(text.contains("zcorba telemetry"), "{text}");
    server.shutdown();
}
