//! End-to-end ORB tests over both transports, both stack modes, and all
//! negotiation outcomes — including the central zero-copy proof.

use std::sync::Arc;

use zc_buffers::{CopyLayer, CopyMeter, ZcBytes};
use zc_cdr::{OctetSeq, ZcOctetSeq};
use zc_giop::SystemExceptionKind;
use zc_orb::{ObjectAdapterExt, Orb, OrbError, OrbResult, Servant, ServerRequest};
use zc_transport::{SimConfig, SimNetwork};

/// The workhorse test servant: echo, fill, sum, and error cases.
struct Transfer;

impl Servant for Transfer {
    fn repo_id(&self) -> &'static str {
        "IDL:zcorba/Transfer:1.0"
    }
    fn dispatch(&self, op: &str, req: &mut ServerRequest<'_>) -> OrbResult<()> {
        match op {
            // sequence<ZC_Octet> echo — the paper's bulk path.
            "echo" => {
                let data: ZcOctetSeq = req.arg()?;
                req.result(&data)
            }
            // standard sequence<octet> echo — the conventional path.
            "echo_std" => {
                let data: OctetSeq = req.arg()?;
                req.result(&data)
            }
            // server-produced bulk data (reply deposit from fresh pages)
            "produce" => {
                let len: u32 = req.arg()?;
                let mut block = zc_buffers::AlignedBuf::with_capacity(len as usize);
                let payload: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
                block.extend_from_slice(&payload);
                req.result(&ZcOctetSeq::from_zc(ZcBytes::from_aligned(block)))
            }
            // mixed scalar/bulk signature
            "checksum" => {
                let seed: u64 = req.arg()?;
                let data: ZcOctetSeq = req.arg()?;
                let label: String = req.arg()?;
                let sum = data
                    .iter()
                    .fold(seed, |acc, &b| acc.wrapping_mul(31).wrapping_add(b as u64));
                req.result(&sum)?;
                req.out(&format!("{label}:{}", data.len()))
            }
            // multiple results
            "min_max" => {
                let v: Vec<i32> = req.arg()?;
                let min = v.iter().copied().min().unwrap_or(0);
                let max = v.iter().copied().max().unwrap_or(0);
                req.result(&min)?;
                req.out(&max)
            }
            "fail_internal" => Err(OrbError::Protocol("servant blew up".into())),
            _ => req.bad_operation(op),
        }
    }
}

fn patterned(n: usize) -> Vec<u8> {
    (0..n).map(|i| ((i * 131 + 7) % 251) as u8).collect()
}

struct Fixture {
    client: Orb,
    _server_orb: Orb,
    server: zc_orb::ServerHandle,
    meter: Arc<CopyMeter>,
}

impl Fixture {
    fn sim(cfg: SimConfig, client_zc: bool, server_zc: bool) -> Fixture {
        let net = SimNetwork::new(cfg);
        let meter = CopyMeter::new_shared();
        let server_orb = Orb::builder()
            .sim(net.clone())
            .zc(server_zc)
            .meter(Arc::clone(&meter))
            .build();
        server_orb
            .adapter()
            .register("transfer", Arc::new(Transfer));
        let server = server_orb.serve(0).unwrap();
        let client = Orb::builder()
            .sim(net)
            .zc(client_zc)
            .meter(Arc::clone(&meter))
            .build();
        Fixture {
            client,
            _server_orb: server_orb,
            server,
            meter,
        }
    }

    fn obj(&self) -> zc_orb::ObjectRef {
        let ior = self
            .server
            .ior_for("transfer", "IDL:zcorba/Transfer:1.0")
            .unwrap();
        self.client.resolve(&ior).unwrap()
    }
}

#[test]
fn zero_copy_proof_end_to_end() {
    // THE central invariant of the paper: on a negotiated ZC connection over
    // the zero-copy stack, a bulk transfer copies ZERO payload bytes in any
    // middleware or OS layer — and the overhead that remains (GIOP headers)
    // does not scale with the payload.
    let f = Fixture::sim(SimConfig::zero_copy(), true, true);
    let obj = f.obj();
    assert!(obj.is_zero_copy());

    let n = 4 << 20; // 4 MiB
    let payload = ZcOctetSeq::from_zc(ZcBytes::zeroed(n));
    let before = f.meter.snapshot();
    let reply = obj.request("echo").arg(&payload).unwrap().invoke().unwrap();
    let back: ZcOctetSeq = reply.result().unwrap();
    let delta = f.meter.snapshot().since(&before);

    assert_eq!(back.len(), n);
    assert!(
        back.ptr_eq(&payload),
        "the client got its own pages back: true zero-copy both directions"
    );
    assert_eq!(
        delta.bytes(CopyLayer::Marshal)
            + delta.bytes(CopyLayer::Demarshal)
            + delta.bytes(CopyLayer::KernelFrag)
            + delta.bytes(CopyLayer::KernelDefrag)
            + delta.bytes(CopyLayer::DepositFallback),
        0,
        "no payload copy in marshal/kernel layers:\n{}",
        delta.report()
    );
    assert!(
        delta.overhead_bytes() < 2048,
        "residual control-message copies must not scale with the 4 MiB payload, got {} bytes:\n{}",
        delta.overhead_bytes(),
        delta.report()
    );
}

#[test]
fn standard_path_copies_at_every_layer() {
    let f = Fixture::sim(SimConfig::copying(), true, true);
    let obj = f.obj();
    let n = 1 << 20;
    let data = OctetSeq(patterned(n));
    let before = f.meter.snapshot();
    let reply = obj
        .request("echo_std")
        .arg(&data)
        .unwrap()
        .invoke()
        .unwrap();
    let back: OctetSeq = reply.result().unwrap();
    assert_eq!(back, data);
    let d = f.meter.snapshot().since(&before);
    // Request + reply each traverse: marshal, socket-send, kernel-frag,
    // kernel-defrag, socket-recv, demarshal — 2 × n at each layer (>=
    // because GIOP headers ride along).
    for layer in [
        CopyLayer::Marshal,
        CopyLayer::Demarshal,
        CopyLayer::SocketSend,
        CopyLayer::SocketRecv,
        CopyLayer::KernelFrag,
        CopyLayer::KernelDefrag,
    ] {
        assert!(
            d.bytes(layer) >= 2 * n as u64,
            "expected ≥ {} at {}, got {}",
            2 * n,
            layer.name(),
            d.bytes(layer)
        );
    }
}

#[test]
fn data_integrity_zc_large_transfer() {
    let f = Fixture::sim(SimConfig::zero_copy(), true, true);
    let obj = f.obj();
    let n = 16 << 20; // the paper's largest TTCP size
    let pattern = patterned(n);
    let payload = ZcOctetSeq::copy_from_slice(&pattern, &f.meter);
    let reply = obj.request("echo").arg(&payload).unwrap().invoke().unwrap();
    let back: ZcOctetSeq = reply.result().unwrap();
    assert_eq!(&back[..], &pattern[..]);
}

#[test]
fn server_produced_deposit() {
    let f = Fixture::sim(SimConfig::zero_copy(), true, true);
    let obj = f.obj();
    let reply = obj
        .request("produce")
        .arg(&(100_000u32))
        .unwrap()
        .invoke()
        .unwrap();
    let block: ZcOctetSeq = reply.result().unwrap();
    assert_eq!(block.len(), 100_000);
    assert_eq!(block[0], 0);
    assert_eq!(block[1], 1);
    assert_eq!(block[250], 250);
    assert_eq!(block[251], 0);
}

#[test]
fn mixed_scalars_and_bulk() {
    let f = Fixture::sim(SimConfig::zero_copy(), true, true);
    let obj = f.obj();
    let data = ZcOctetSeq::copy_from_slice(&patterned(50_000), &f.meter);
    let reply = obj
        .request("checksum")
        .arg(&7u64)
        .unwrap()
        .arg(&data)
        .unwrap()
        .arg(&"frame".to_string())
        .unwrap()
        .invoke()
        .unwrap();
    let mut results = reply.results();
    let sum: u64 = results.next().unwrap();
    let label: String = results.next().unwrap();
    let expected = data
        .iter()
        .fold(7u64, |acc, &b| acc.wrapping_mul(31).wrapping_add(b as u64));
    assert_eq!(sum, expected);
    assert_eq!(label, "frame:50000");
}

#[test]
fn multiple_results() {
    let f = Fixture::sim(SimConfig::copying(), true, true);
    let obj = f.obj();
    let reply = obj
        .request("min_max")
        .arg(&vec![3i32, -7, 12, 0])
        .unwrap()
        .invoke()
        .unwrap();
    let mut r = reply.results();
    assert_eq!(r.next::<i32>().unwrap(), -7);
    assert_eq!(r.next::<i32>().unwrap(), 12);
}

#[test]
fn negotiation_fallback_when_server_refuses_zc() {
    let f = Fixture::sim(SimConfig::zero_copy(), true, false);
    let obj = f.obj();
    assert!(!obj.is_zero_copy(), "one unwilling side disables deposits");
    // ZcOctetSeq still works — transparently inline.
    let pattern = patterned(80_000);
    let payload = ZcOctetSeq::copy_from_slice(&pattern, &f.meter);
    let reply = obj.request("echo").arg(&payload).unwrap().invoke().unwrap();
    let back: ZcOctetSeq = reply.result().unwrap();
    assert_eq!(&back[..], &pattern[..]);
    assert!(!back.ptr_eq(&payload), "inline fallback cannot share pages");
    assert!(
        f.meter.bytes(CopyLayer::Marshal) >= 80_000,
        "fallback marshals (copies) the payload"
    );
}

#[test]
fn heterogeneous_peer_interop() {
    // The client *claims* a foreign architecture (swapped byte order). The
    // connection must fall back to conventional IIOP, and the data must
    // still arrive intact — a real cross-endian exchange, since the wire
    // order becomes the foreign one.
    let net = SimNetwork::new(SimConfig::copying());
    let server_orb = Orb::builder().sim(net.clone()).zc(true).build();
    server_orb
        .adapter()
        .register("transfer", Arc::new(Transfer));
    let server = server_orb.serve(0).unwrap();
    let client = Orb::builder()
        .sim(net)
        .zc(true)
        .pretend_foreign(true)
        .build();
    let ior = server
        .ior_for("transfer", "IDL:zcorba/Transfer:1.0")
        .unwrap();
    let obj = client.resolve(&ior).unwrap();
    assert!(!obj.is_zero_copy());
    let reply = obj
        .request("min_max")
        .arg(&vec![5i32, 9, -2])
        .unwrap()
        .invoke()
        .unwrap();
    let mut r = reply.results();
    assert_eq!(r.next::<i32>().unwrap(), -2);
    assert_eq!(r.next::<i32>().unwrap(), 9);
}

#[test]
fn exceptions_propagate() {
    let f = Fixture::sim(SimConfig::copying(), true, true);
    let obj = f.obj();

    let err = obj.request("no_such_op").invoke().unwrap_err();
    match err {
        OrbError::System(ex) => assert_eq!(ex.kind, SystemExceptionKind::BadOperation),
        other => panic!("unexpected {other:?}"),
    }

    let err = obj.request("fail_internal").invoke().unwrap_err();
    match err {
        OrbError::System(ex) => assert_eq!(ex.kind, SystemExceptionKind::Internal),
        other => panic!("unexpected {other:?}"),
    }

    // Unknown object key
    let ior = zc_giop::Ior::new_iiop("IDL:zcorba/Transfer:1.0", "sim", f.server.port(), b"ghost");
    let ghost = f.client.resolve(&ior).unwrap();
    let err = ghost
        .request("echo_std")
        .arg(&OctetSeq(vec![1]))
        .unwrap()
        .invoke()
        .unwrap_err();
    match err {
        OrbError::System(ex) => assert_eq!(ex.kind, SystemExceptionKind::ObjectNotExist),
        other => panic!("unexpected {other:?}"),
    }

    // The connection survives exceptions: a normal call still works.
    let reply = obj
        .request("echo_std")
        .arg(&OctetSeq(vec![9, 9]))
        .unwrap()
        .invoke()
        .unwrap();
    assert_eq!(reply.result::<OctetSeq>().unwrap().0, vec![9, 9]);
}

#[test]
fn locate_request_roundtrip() {
    let f = Fixture::sim(SimConfig::zero_copy(), true, true);
    let obj = f.obj();
    assert!(obj.locate().unwrap(), "registered object is OBJECT_HERE");
    // the connection is still usable for normal requests afterwards
    let reply = obj
        .request("echo_std")
        .arg(&OctetSeq(vec![5]))
        .unwrap()
        .invoke()
        .unwrap();
    assert_eq!(reply.result::<OctetSeq>().unwrap().0, vec![5]);
    // a ghost key still answers (OBJECT_HERE is reachability, per GIOP);
    // the authoritative check is the invocation, which raises.
    let ghost = f
        .client
        .resolve(&zc_giop::Ior::new_iiop(
            "IDL:zcorba/Transfer:1.0",
            "sim",
            f.server.port(),
            b"ghost",
        ))
        .unwrap();
    ghost.locate().unwrap();
    assert!(matches!(
        ghost
            .request("echo_std")
            .arg(&OctetSeq(vec![1]))
            .unwrap()
            .invoke(),
        Err(OrbError::System(_))
    ));
}

#[test]
fn oneway_requests() {
    let f = Fixture::sim(SimConfig::zero_copy(), true, true);
    let obj = f.obj();
    // oneway calls produce no reply; a following two-way call must not see
    // stale state.
    obj.request("echo_std")
        .arg(&OctetSeq(vec![1, 2, 3]))
        .unwrap()
        .invoke_oneway()
        .unwrap();
    let reply = obj
        .request("min_max")
        .arg(&vec![4i32])
        .unwrap()
        .invoke()
        .unwrap();
    assert_eq!(reply.results().next::<i32>().unwrap(), 4);
}

#[test]
fn concurrent_clients_private_connections() {
    let f = Fixture::sim(SimConfig::zero_copy(), true, true);
    let ior = f
        .server
        .ior_for("transfer", "IDL:zcorba/Transfer:1.0")
        .unwrap();
    let mut handles = Vec::new();
    for t in 0..8 {
        let client = f.client.clone();
        let ior = ior.clone();
        handles.push(std::thread::spawn(move || {
            let obj = client.resolve_private(&ior).unwrap();
            for i in 0..20 {
                let n = 1000 * (t + 1) + i;
                let payload = ZcOctetSeq::with_length(n);
                let reply = obj.request("echo").arg(&payload).unwrap().invoke().unwrap();
                let back: ZcOctetSeq = reply.result().unwrap();
                assert_eq!(back.len(), n);
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn connection_cache_is_shared() {
    let f = Fixture::sim(SimConfig::zero_copy(), true, true);
    let ior = f
        .server
        .ior_for("transfer", "IDL:zcorba/Transfer:1.0")
        .unwrap();
    let a = f.client.resolve(&ior).unwrap();
    let b = f.client.resolve(&ior).unwrap();
    // Both proxies work over the shared cached connection.
    a.request("min_max")
        .arg(&vec![1i32])
        .unwrap()
        .invoke()
        .unwrap();
    b.request("min_max")
        .arg(&vec![2i32])
        .unwrap()
        .invoke()
        .unwrap();
}

#[test]
fn resolve_via_ior_string() {
    let f = Fixture::sim(SimConfig::zero_copy(), true, true);
    let ior = f
        .server
        .ior_for("transfer", "IDL:zcorba/Transfer:1.0")
        .unwrap();
    let s = ior.to_ior_string();
    let obj = f.client.resolve_str(&s).unwrap();
    let reply = obj
        .request("echo_std")
        .arg(&OctetSeq(vec![42]))
        .unwrap()
        .invoke()
        .unwrap();
    assert_eq!(reply.result::<OctetSeq>().unwrap().0, vec![42]);
}

#[test]
fn ior_for_unknown_key_errors() {
    let f = Fixture::sim(SimConfig::copying(), true, true);
    assert!(matches!(
        f.server.ior_for("nope", "IDL:x:1.0"),
        Err(OrbError::Unresolvable(_))
    ));
}

#[test]
fn tcp_transport_end_to_end() {
    let meter = CopyMeter::new_shared();
    let server_orb = Orb::builder().tcp().meter(Arc::clone(&meter)).build();
    server_orb
        .adapter()
        .register("transfer", Arc::new(Transfer));
    let server = server_orb.serve(0).unwrap();
    let client = Orb::builder().tcp().meter(Arc::clone(&meter)).build();
    let ior = server
        .ior_for("transfer", "IDL:zcorba/Transfer:1.0")
        .unwrap();
    let obj = client.resolve(&ior).unwrap();
    assert!(
        obj.is_zero_copy(),
        "same machine, both willing: ORB-level ZC is on even over real TCP"
    );
    let n = 2 << 20;
    let pattern = patterned(n);
    let payload = ZcOctetSeq::copy_from_slice(&pattern, &meter);
    let before = meter.snapshot();
    let reply = obj.request("echo").arg(&payload).unwrap().invoke().unwrap();
    let back: ZcOctetSeq = reply.result().unwrap();
    assert_eq!(&back[..], &pattern[..]);
    let d = meter.snapshot().since(&before);
    assert_eq!(
        d.bytes(CopyLayer::Marshal) + d.bytes(CopyLayer::Demarshal),
        0,
        "ZC ORB over real TCP: marshal copies gone; only socket crossings remain"
    );
    assert!(d.bytes(CopyLayer::SocketSend) >= 2 * n as u64);
    server.shutdown();
}

#[test]
fn ablation_deposit_disabled_reintroduces_marshal_copies() {
    let net = SimNetwork::new(SimConfig::zero_copy());
    let meter = CopyMeter::new_shared();
    let server_orb = Orb::builder()
        .sim(net.clone())
        .meter(Arc::clone(&meter))
        .deposit_enabled(false)
        .build();
    server_orb
        .adapter()
        .register("transfer", Arc::new(Transfer));
    let server = server_orb.serve(0).unwrap();
    let client = Orb::builder()
        .sim(net)
        .meter(Arc::clone(&meter))
        .deposit_enabled(false)
        .build();
    let ior = server
        .ior_for("transfer", "IDL:zcorba/Transfer:1.0")
        .unwrap();
    let obj = client.resolve(&ior).unwrap();
    assert!(!obj.is_zero_copy());
    let n = 500_000;
    let payload = ZcOctetSeq::with_length(n);
    let before = meter.snapshot();
    let reply = obj.request("echo").arg(&payload).unwrap().invoke().unwrap();
    let _back: ZcOctetSeq = reply.result().unwrap();
    let d = meter.snapshot().since(&before);
    assert!(
        d.bytes(CopyLayer::Marshal) >= n as u64,
        "marshal-bypass-only config still copies inline"
    );
}

#[test]
fn ablation_coupled_data_path_still_correct() {
    let net = SimNetwork::new(SimConfig::zero_copy());
    let meter = CopyMeter::new_shared();
    let server_orb = Orb::builder()
        .sim(net.clone())
        .meter(Arc::clone(&meter))
        .separate_data(false)
        .build();
    server_orb
        .adapter()
        .register("transfer", Arc::new(Transfer));
    let server = server_orb.serve(0).unwrap();
    let client = Orb::builder()
        .sim(net)
        .meter(Arc::clone(&meter))
        .separate_data(false)
        .build();
    let ior = server
        .ior_for("transfer", "IDL:zcorba/Transfer:1.0")
        .unwrap();
    let obj = client.resolve(&ior).unwrap();
    let pattern = patterned(300_000);
    let payload = ZcOctetSeq::copy_from_slice(&pattern, &meter);
    let before = meter.snapshot();
    let reply = obj.request("echo").arg(&payload).unwrap().invoke().unwrap();
    let back: ZcOctetSeq = reply.result().unwrap();
    assert_eq!(&back[..], &pattern[..]);
    let d = meter.snapshot().since(&before);
    assert!(
        d.bytes(CopyLayer::Marshal) >= 2 * 300_000u64,
        "coupling control+data re-introduces buffering copies (got {})",
        d.bytes(CopyLayer::Marshal)
    );
}

#[test]
fn speculation_miss_transfers_stay_correct() {
    let f = Fixture::sim(SimConfig::zero_copy_with_speculation(0.3), true, true);
    let obj = f.obj();
    for i in 0..30 {
        let n = 10_000 + i * 777;
        let pattern = patterned(n);
        let payload = ZcOctetSeq::copy_from_slice(&pattern, &f.meter);
        let reply = obj.request("echo").arg(&payload).unwrap().invoke().unwrap();
        let back: ZcOctetSeq = reply.result().unwrap();
        assert_eq!(&back[..], &pattern[..], "round {i}");
    }
    assert!(
        f.meter.bytes(CopyLayer::DepositFallback) > 0,
        "with p=0.3 some speculation misses must have occurred"
    );
}

#[test]
fn oversized_inline_payload_is_fragmented_transparently() {
    // A marshaled-inline payload above FRAGMENT_THRESHOLD (4 MiB) forces
    // the connection to emit GIOP Fragment continuations; the application
    // must not notice.
    let f = Fixture::sim(SimConfig::copying(), true, true);
    let obj = f.obj();
    let n = 6 << 20;
    let pattern = patterned(n);
    let reply = obj
        .request("echo_std")
        .arg(&OctetSeq(pattern.clone()))
        .unwrap()
        .invoke()
        .unwrap();
    let back: OctetSeq = reply.result().unwrap();
    assert_eq!(back.0, pattern);
    // and again over the coupled-data ablation, where a ZC payload rides
    // inline in the control message
    let net = SimNetwork::new(SimConfig::zero_copy());
    let meter = CopyMeter::new_shared();
    let server_orb = Orb::builder()
        .sim(net.clone())
        .meter(Arc::clone(&meter))
        .separate_data(false)
        .build();
    server_orb
        .adapter()
        .register("transfer", Arc::new(Transfer));
    let server = server_orb.serve(0).unwrap();
    let client = Orb::builder()
        .sim(net)
        .meter(meter)
        .separate_data(false)
        .build();
    let ior = server
        .ior_for("transfer", "IDL:zcorba/Transfer:1.0")
        .unwrap();
    let obj2 = client.resolve(&ior).unwrap();
    let payload = ZcOctetSeq::copy_from_slice(&pattern, &f.meter);
    let back2: ZcOctetSeq = obj2
        .request("echo")
        .arg(&payload)
        .unwrap()
        .invoke()
        .unwrap()
        .result()
        .unwrap();
    assert_eq!(&back2[..], &pattern[..]);
}

#[test]
fn empty_payloads_roundtrip() {
    let f = Fixture::sim(SimConfig::zero_copy(), true, true);
    let obj = f.obj();
    let reply = obj
        .request("echo")
        .arg(&ZcOctetSeq::with_length(0))
        .unwrap()
        .invoke()
        .unwrap();
    assert_eq!(reply.result::<ZcOctetSeq>().unwrap().len(), 0);
    let reply = obj
        .request("echo_std")
        .arg(&OctetSeq(vec![]))
        .unwrap()
        .invoke()
        .unwrap();
    assert!(reply.result::<OctetSeq>().unwrap().is_empty());
}

#[test]
fn server_shutdown_refuses_new_connections() {
    let net = SimNetwork::new(SimConfig::copying());
    let server_orb = Orb::builder().sim(net.clone()).build();
    server_orb
        .adapter()
        .register("transfer", Arc::new(Transfer));
    let server = server_orb.serve(0).unwrap();
    let port = server.port();
    let client = Orb::builder().sim(net.clone()).build();
    let ior = server
        .ior_for("transfer", "IDL:zcorba/Transfer:1.0")
        .unwrap();
    // connection works before shutdown
    let obj = client.resolve(&ior).unwrap();
    obj.request("min_max")
        .arg(&vec![1i32])
        .unwrap()
        .invoke()
        .unwrap();
    server.shutdown();
    // a *new* connection must now be refused
    let fresh_client = Orb::builder().sim(net).build();
    let ior2 = zc_giop::Ior::new_iiop("IDL:zcorba/Transfer:1.0", "sim", port, b"transfer");
    assert!(fresh_client.resolve(&ior2).is_err());
}
