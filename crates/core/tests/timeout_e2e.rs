//! Request timeouts: a stalled servant must not hang the client forever,
//! and a timed-out connection must fail fast rather than deliver stale
//! replies.

use std::sync::Arc;
use std::time::Duration;

use zc_cdr::OctetSeq;
use zc_orb::{ObjectAdapterExt, Orb, OrbError, OrbResult, Servant, ServerRequest};
use zc_transport::{SimConfig, SimNetwork, TransportError};

struct Sleepy;
impl Servant for Sleepy {
    fn repo_id(&self) -> &'static str {
        "IDL:to/Sleepy:1.0"
    }
    fn dispatch(&self, op: &str, req: &mut ServerRequest<'_>) -> OrbResult<()> {
        match op {
            "nap" => {
                let ms: u32 = req.arg()?;
                std::thread::sleep(Duration::from_millis(ms as u64));
                req.result(&ms)
            }
            "quick" => {
                let d: OctetSeq = req.arg()?;
                req.result(&d)
            }
            other => req.bad_operation(other),
        }
    }
}

fn fixture() -> (Orb, zc_orb::ServerHandle, Orb) {
    let net = SimNetwork::new(SimConfig::zero_copy());
    let server_orb = Orb::builder().sim(net.clone()).build();
    server_orb.adapter().register("sleepy", Arc::new(Sleepy));
    let server = server_orb.serve(0).unwrap();
    let client = Orb::builder().sim(net).build();
    (server_orb, server, client)
}

#[test]
fn fast_reply_within_deadline_succeeds() {
    let (_s, server, client) = fixture();
    let obj = client
        .resolve(&server.ior_for("sleepy", "IDL:to/Sleepy:1.0").unwrap())
        .unwrap();
    let echoed: OctetSeq = obj
        .request("quick")
        .arg(&OctetSeq(vec![1, 2, 3]))
        .unwrap()
        .invoke_timeout(Duration::from_secs(5))
        .unwrap()
        .result()
        .unwrap();
    assert_eq!(echoed.0, vec![1, 2, 3]);
    // the connection stays healthy after a successful timed call
    let again: u32 = obj
        .request("nap")
        .arg(&1u32)
        .unwrap()
        .invoke()
        .unwrap()
        .result()
        .unwrap();
    assert_eq!(again, 1);
}

#[test]
fn stalled_servant_times_out_and_poisons_the_connection() {
    let (_s, server, client) = fixture();
    let ior = server.ior_for("sleepy", "IDL:to/Sleepy:1.0").unwrap();
    let obj = client.resolve_private(&ior).unwrap();

    let err = obj
        .request("nap")
        .arg(&2_000u32) // servant sleeps 2 s
        .unwrap()
        .invoke_timeout(Duration::from_millis(50))
        .unwrap_err();
    assert_eq!(err, OrbError::Transport(TransportError::Timeout));

    // The poisoned connection (its stream may still hold the stale nap
    // reply) must never carry another request. The proxy abandons it and
    // moves to a fresh connection — nothing was sent this attempt, so
    // that is safe for any operation — and the reply it delivers must
    // correlate with the *new* request, never the stale one.
    let ok: OctetSeq = obj
        .request("quick")
        .arg(&OctetSeq(vec![9]))
        .unwrap()
        .invoke()
        .unwrap()
        .result()
        .unwrap();
    assert_eq!(ok.0, vec![9]);

    // A fresh resolve works fine too.
    let fresh = client.resolve_private(&ior).unwrap();
    let ok: OctetSeq = fresh
        .request("quick")
        .arg(&OctetSeq(vec![9]))
        .unwrap()
        .invoke()
        .unwrap()
        .result()
        .unwrap();
    assert_eq!(ok.0, vec![9]);
}

#[test]
fn timeout_over_real_tcp() {
    let server_orb = Orb::builder().tcp().build();
    server_orb.adapter().register("sleepy", Arc::new(Sleepy));
    let server = server_orb.serve(0).unwrap();
    let client = Orb::builder().tcp().build();
    let ior = server.ior_for("sleepy", "IDL:to/Sleepy:1.0").unwrap();
    let obj = client.resolve_private(&ior).unwrap();
    let err = obj
        .request("nap")
        .arg(&2_000u32)
        .unwrap()
        .invoke_timeout(Duration::from_millis(50))
        .unwrap_err();
    assert_eq!(err, OrbError::Transport(TransportError::Timeout));
    server.shutdown();
}
