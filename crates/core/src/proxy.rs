//! Client-side proxies: object references, static requests and replies.
//!
//! This is the stub side of the paper's Figure 3 data path: the application
//! passes parameters by reference into a [`StaticRequest`]; marshaling
//! happens once, into the connection's body encoder (or, for `ZcOctetSeq`
//! on a ZC connection, not at all — a descriptor is written and the block
//! rides the data channel).

use std::sync::Arc;

use parking_lot::Mutex;

use zc_buffers::ZcBytes;
use zc_cdr::{CdrDecoder, CdrEncoder, CdrMarshal};
use zc_giop::Ior;
use zc_trace::{EventKind, TraceLayer};

use crate::conn::{GiopConn, IncomingReply};
use crate::{OrbError, OrbResult};

/// A client-side reference to a remote object: the IOR plus a (shared)
/// negotiated connection to its server.
#[derive(Clone)]
pub struct ObjectRef {
    ior: Ior,
    object_key: Vec<u8>,
    conn: Arc<Mutex<GiopConn>>,
}

impl ObjectRef {
    /// Wrap an established connection. Normally obtained from
    /// [`crate::Orb::resolve`].
    pub fn new(ior: Ior, conn: Arc<Mutex<GiopConn>>) -> OrbResult<ObjectRef> {
        let object_key = ior.iiop_profile()?.object_key.clone();
        Ok(ObjectRef {
            ior,
            object_key,
            conn,
        })
    }

    /// The reference's IOR.
    pub fn ior(&self) -> &Ior {
        &self.ior
    }

    /// Whether this reference's connection negotiated the zero-copy path.
    pub fn is_zero_copy(&self) -> bool {
        self.conn.lock().zc_active()
    }

    /// Begin a static invocation of `operation`.
    pub fn request(&self, operation: &str) -> StaticRequest {
        let enc = self.conn.lock().body_encoder();
        StaticRequest {
            target: self.clone(),
            operation: operation.to_string(),
            enc,
            err: None,
        }
    }

    /// GIOP locate: does the server claim to host this object's key?
    pub fn locate(&self) -> OrbResult<bool> {
        self.conn.lock().locate(&self.object_key)
    }

    /// Transport statistics of the underlying connection.
    pub fn transport_stats(&self) -> zc_transport::ConnStats {
        self.conn.lock().transport_stats()
    }
}

impl std::fmt::Debug for ObjectRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ObjectRef({} @ {:?})",
            self.ior.type_id,
            String::from_utf8_lossy(&self.object_key)
        )
    }
}

/// A static method invocation under construction (MICO's `StaticRequest`).
pub struct StaticRequest {
    target: ObjectRef,
    operation: String,
    enc: CdrEncoder,
    err: Option<OrbError>,
}

impl StaticRequest {
    /// Marshal the next `in` parameter. Errors are deferred to
    /// [`StaticRequest::invoke`] so calls chain fluently.
    pub fn arg<T: CdrMarshal>(mut self, v: &T) -> OrbResult<StaticRequest> {
        if self.err.is_none() {
            if let Err(e) = v.marshal(&mut self.enc) {
                self.err = Some(e.into());
            }
        }
        Ok(self)
    }

    /// Send the request and wait for its reply.
    pub fn invoke(self) -> OrbResult<Reply> {
        self.invoke_inner(None)
    }

    /// Send the request and wait at most `timeout` for the reply. On
    /// timeout the connection is poisoned (a stale reply may still
    /// arrive); resolve a fresh reference to continue.
    pub fn invoke_timeout(self, timeout: std::time::Duration) -> OrbResult<Reply> {
        self.invoke_inner(Some(timeout))
    }

    fn invoke_inner(self, timeout: Option<std::time::Duration>) -> OrbResult<Reply> {
        let StaticRequest {
            target,
            operation,
            enc,
            err,
        } = self;
        if let Some(e) = err {
            return Err(e);
        }
        let mut conn = target.conn.lock();
        let tele = Arc::clone(conn.telemetry());
        let start = tele.is_enabled().then(std::time::Instant::now);
        let id = conn.send_request(&target.object_key, &operation, true, enc)?;
        let result = match timeout {
            None => conn.recv_reply(id),
            Some(d) => conn.recv_reply_timeout(id, d),
        };
        let incoming = match result {
            Ok(r) => r,
            Err(e) => {
                if matches!(e, OrbError::System(_) | OrbError::Transport(_)) {
                    // Failed invocation: dump the connection's recent
                    // events to aid post-mortem diagnosis.
                    if let Some(dump) = conn.post_mortem(16) {
                        eprintln!("zcorba: invocation of {operation:?} failed: {e}\n{dump}");
                    }
                }
                return Err(e);
            }
        };
        if let Some(start) = start {
            let elapsed = start.elapsed().as_nanos() as u64;
            tele.metrics().request_latency_ns.record(elapsed);
            tele.record(
                TraceLayer::Orb,
                EventKind::Invoke,
                conn.trace_conn_id(),
                conn.last_trace_id(),
                elapsed,
            );
        }
        let meter = conn.meter();
        Ok(Reply { incoming, meter })
    }

    /// Send the request without expecting a reply (IDL `oneway`).
    pub fn invoke_oneway(self) -> OrbResult<()> {
        let StaticRequest {
            target,
            operation,
            enc,
            err,
        } = self;
        if let Some(e) = err {
            return Err(e);
        }
        let mut conn = target.conn.lock();
        conn.send_request(&target.object_key, &operation, false, enc)?;
        Ok(())
    }
}

/// A successful reply; demarshal results in declaration order.
#[derive(Debug)]
pub struct Reply {
    incoming: IncomingReply,
    meter: Arc<zc_buffers::CopyMeter>,
}

impl Reply {
    /// Demarshal the (single) result value.
    pub fn result<T: CdrMarshal>(self) -> OrbResult<T> {
        let mut results = self.results();
        results.next()
    }

    /// Iterate multiple out-values.
    pub fn results(self) -> ReplyResults {
        let IncomingReply {
            body,
            results_offset,
            deposits,
            order,
            zc,
        } = self.incoming;
        ReplyResults {
            body,
            offset: results_offset,
            slots: deposits.into_iter().map(Some).collect(),
            order,
            zc,
            meter: self.meter,
        }
    }

    /// Peek at the first deposited block, if any (fast path for streaming
    /// consumers that want the raw pages).
    pub fn first_deposit(&self) -> Option<ZcBytes> {
        self.incoming.deposits.first().cloned()
    }
}

/// Sequential access to a reply's out-values.
pub struct ReplyResults {
    body: Vec<u8>,
    offset: usize,
    slots: Vec<Option<ZcBytes>>,
    order: zc_cdr::ByteOrder,
    zc: bool,
    meter: Arc<zc_buffers::CopyMeter>,
}

impl ReplyResults {
    /// Demarshal the next out-value. (Named distinctly from
    /// `Iterator::next` — results are heterogeneous, so this cannot be an
    /// iterator.)
    #[allow(clippy::should_implement_trait)]
    pub fn next<T: CdrMarshal>(&mut self) -> OrbResult<T> {
        // Rebuild a decoder positioned at the current offset; deposit slots
        // persist across calls so descriptor indices stay stable.
        let slots = std::mem::take(&mut self.slots);
        let mut dec = CdrDecoder::new(&self.body, self.order).with_meter(Arc::clone(&self.meter));
        if self.zc {
            dec = dec.with_deposit_slots(slots);
        }
        dec.skip(self.offset).map_err(OrbError::from)?;
        let v = T::demarshal(&mut dec)?;
        self.offset = dec.position();
        self.slots = dec.into_deposit_slots();
        Ok(v)
    }
}
