//! Client-side proxies: object references, static requests and replies.
//!
//! This is the stub side of the paper's Figure 3 data path: the application
//! passes parameters by reference into a [`StaticRequest`]; marshaling
//! happens once, into the connection's body encoder (or, for `ZcOctetSeq`
//! on a ZC connection, not at all — a descriptor is written and the block
//! rides the data channel).

use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use zc_buffers::ZcBytes;
use zc_cdr::{CdrDecoder, CdrEncoder, CdrMarshal};
use zc_giop::{GiopError, Ior, SystemException, SystemExceptionKind};
use zc_trace::{EventKind, TraceLayer};
use zc_transport::TransportError;

use crate::conn::{GiopConn, IncomingReply};
use crate::retry::{endpoint_salt, RetryPolicy};
use crate::{OrbError, OrbResult};

/// CORBA completion codes (`completed` field of a system exception).
const COMPLETED_MAYBE: u32 = 2;

/// One dialable member of an object group: endpoint plus object key.
pub(crate) type Target = ((String, u16), Vec<u8>);

/// What an `ObjectRef` needs to heal itself: the owning ORB (to dial
/// replacement connections and consult breakers) plus every dialable
/// target from the IOR's profile list. For a replicated object group the
/// list has one entry per replica, in IOR order (index 0 = primary).
/// `active` is shared by every clone of the reference, so one failover
/// heals them all (they already share the connection `Arc` being swapped).
#[derive(Clone)]
struct Recovery {
    orb: crate::Orb,
    /// One entry per IIOP profile, in IOR order.
    targets: Arc<Vec<Target>>,
    /// Index of the profile currently in use.
    active: Arc<AtomicUsize>,
    /// Consecutive successes on a backup since the last primary probe
    /// (sticky-primary fail-back, see [`RetryPolicy::reprobe_interval`]).
    backup_streak: Arc<AtomicU32>,
    /// Whether replacement connections also repair the ORB's shared
    /// connection cache (false for private references).
    cached: bool,
}

impl Recovery {
    fn active_index(&self) -> usize {
        self.active
            .load(Ordering::SeqCst)
            .min(self.targets.len() - 1)
    }

    fn active_target(&self) -> &Target {
        &self.targets[self.active_index()]
    }

    /// Record a success on the active profile, and — when running on a
    /// backup — count toward the sticky-primary re-probe: after
    /// `reprobe_interval` consecutive backup successes, one attempt is
    /// made to dial the primary back (its breaker gets the first say).
    fn note_success_and_maybe_reprobe(
        &self,
        conn: &Arc<Mutex<GiopConn>>,
        policy: &RetryPolicy,
        tele: &Arc<zc_trace::Telemetry>,
    ) {
        let idx = self.active_index();
        self.orb.note_endpoint_success(&self.targets[idx].0);
        if idx == 0 || policy.reprobe_interval == 0 {
            return;
        }
        let streak = self.backup_streak.fetch_add(1, Ordering::SeqCst) + 1;
        if streak < policy.reprobe_interval {
            return;
        }
        self.backup_streak.store(0, Ordering::SeqCst);
        // reconnect_shared consults the primary's breaker first: a still-
        // open breaker refuses the probe without a dial.
        if self
            .orb
            .reconnect_shared(&self.targets[0].0, conn, self.cached)
            .is_ok()
        {
            self.active.store(0, Ordering::SeqCst);
            record_failover(0, tele);
        }
    }
}

/// Account a completed profile switch (failover, or fail-back to `idx` 0).
fn record_failover(idx: usize, tele: &Arc<zc_trace::Telemetry>) {
    if tele.is_enabled() {
        tele.metrics().failovers.incr();
    }
    tele.note_failover();
    tele.record(TraceLayer::Orb, EventKind::Failover, 0, 0, idx as u64);
}

/// Rotate `target` to the next live profile of its object group: walk the
/// profile list in IOR order starting after the active one, skip replicas
/// whose breaker is open, and swap the first successful dial into the
/// shared connection slot. Returns whether a replacement profile is live.
fn rotate_failover(target: &ObjectRef, r: &Recovery, tele: &Arc<zc_trace::Telemetry>) -> bool {
    let n = r.targets.len();
    if n <= 1 {
        return false;
    }
    let cur = r.active_index();
    for step in 1..n {
        let idx = (cur + step) % n;
        let ep = &r.targets[idx].0;
        // A breaker-open replica is known-bad: skip it without a dial.
        if r.orb.breaker_check(ep).is_err() {
            continue;
        }
        // reconnect_shared records dial failures against the replica.
        if r.orb.reconnect_shared(ep, &target.conn, r.cached).is_ok() {
            r.active.store(idx, Ordering::SeqCst);
            r.backup_streak.store(0, Ordering::SeqCst);
            record_failover(idx, tele);
            return true;
        }
    }
    false
}

/// A client-side reference to a remote object: the IOR plus a (shared)
/// negotiated connection to its server.
#[derive(Clone)]
pub struct ObjectRef {
    ior: Ior,
    object_key: Vec<u8>,
    conn: Arc<Mutex<GiopConn>>,
    recovery: Option<Recovery>,
}

impl ObjectRef {
    /// Wrap an established connection. Normally obtained from
    /// [`crate::Orb::resolve`]. References built directly (without an
    /// owning ORB) cannot self-heal: failures surface immediately.
    pub fn new(ior: Ior, conn: Arc<Mutex<GiopConn>>) -> OrbResult<ObjectRef> {
        // zc-audit: allow(control-plane) — object key from the IOR profile, not payload
        let object_key = ior.iiop_profile()?.object_key.clone();
        Ok(ObjectRef {
            ior,
            object_key,
            conn,
            recovery: None,
        })
    }

    /// Attach recovery state (reconnects repair the shared cache).
    /// `targets` lists every dialable profile of the IOR in order;
    /// `active` is the one currently connected.
    pub(crate) fn with_recovery(
        mut self,
        orb: crate::Orb,
        targets: Vec<Target>,
        active: usize,
    ) -> ObjectRef {
        debug_assert!(!targets.is_empty() && active < targets.len());
        self.recovery = Some(Recovery {
            orb,
            targets: Arc::new(targets),
            active: Arc::new(AtomicUsize::new(active)),
            backup_streak: Arc::new(AtomicU32::new(0)),
            cached: true,
        });
        self
    }

    /// Attach recovery state for a private (uncached) connection.
    pub(crate) fn with_recovery_private(
        mut self,
        orb: crate::Orb,
        targets: Vec<Target>,
        active: usize,
    ) -> ObjectRef {
        debug_assert!(!targets.is_empty() && active < targets.len());
        self.recovery = Some(Recovery {
            orb,
            targets: Arc::new(targets),
            active: Arc::new(AtomicUsize::new(active)),
            backup_streak: Arc::new(AtomicU32::new(0)),
            cached: false,
        });
        self
    }

    /// The endpoint the reference is currently bound to (for an object
    /// group, the active replica; otherwise the IOR's first profile).
    pub fn active_endpoint(&self) -> OrbResult<(String, u16)> {
        match &self.recovery {
            Some(r) => {
                let (endpoint, _) = r.active_target();
                // zc-audit: allow(cheap-clone) — endpoint identity (host string + port), not payload
                Ok(endpoint.clone())
            }
            None => Ok(self.ior.iiop_profile()?.endpoint()),
        }
    }

    /// The reference's IOR.
    pub fn ior(&self) -> &Ior {
        &self.ior
    }

    /// Whether this reference's connection negotiated the zero-copy path.
    pub fn is_zero_copy(&self) -> bool {
        self.conn.lock().zc_active()
    }

    /// Begin a static invocation of `operation`.
    pub fn request(&self, operation: &str) -> StaticRequest {
        let mut conn = self.conn.lock();
        let span = conn.telemetry().request_span();
        let enc = conn.body_encoder();
        // body_encoder just decided whether this message is a degraded
        // connection's zero-copy probe; that decision tags the journey's
        // first attempt (`degrade-probe` instead of `initial`).
        let probe = conn.take_last_probe();
        drop(conn);
        StaticRequest {
            // zc-audit: allow(cheap-clone) — ObjectRef is an Arc handle plus small IOR metadata
            target: self.clone(),
            operation: operation.to_string(),
            enc,
            err: None,
            idempotent: false,
            probe,
            span,
        }
    }

    /// GIOP locate: does the server claim to host this object's key?
    pub fn locate(&self) -> OrbResult<bool> {
        // The conn mutex *is* the wire serializer: locate must round-trip
        // under it, and it is a leaf lock (nothing else is taken while held).
        // zc-audit: allow(lock-held) — locate round-trips under the wire-serializing leaf lock
        self.conn.lock().locate(&self.object_key)
    }

    /// Transport statistics of the underlying connection.
    pub fn transport_stats(&self) -> zc_transport::ConnStats {
        self.conn.lock().transport_stats()
    }
}

impl std::fmt::Debug for ObjectRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ObjectRef({} @ {:?})",
            self.ior.type_id,
            String::from_utf8_lossy(&self.object_key)
        )
    }
}

/// A static method invocation under construction (MICO's `StaticRequest`).
pub struct StaticRequest {
    target: ObjectRef,
    operation: String,
    enc: CdrEncoder,
    err: Option<OrbError>,
    idempotent: bool,
    /// Whether the encoder was scheduled as a degraded connection's
    /// zero-copy probe (tags the journey's first attempt).
    probe: bool,
    /// Per-request stage clocks; accumulates marshal time across `arg`
    /// calls and commits once the trace id exists (after the send).
    span: zc_trace::RequestSpan,
}

impl StaticRequest {
    /// Marshal the next `in` parameter. Errors are deferred to
    /// [`StaticRequest::invoke`] so calls chain fluently.
    pub fn arg<T: CdrMarshal>(mut self, v: &T) -> OrbResult<StaticRequest> {
        if self.err.is_none() {
            let t0 = self.span.begin();
            if let Err(e) = v.marshal(&mut self.enc) {
                self.err = Some(e.into());
            }
            self.span.end(zc_trace::Stage::ClientMarshal, t0);
        }
        Ok(self)
    }

    /// Declare the operation idempotent: executing it twice is as good as
    /// once. Under CORBA's at-most-once rule, only idempotent operations
    /// may be retried after the request was (possibly) dispatched — a
    /// send-side failure is provably undispatched and retries regardless.
    pub fn idempotent(mut self) -> StaticRequest {
        self.idempotent = true;
        self
    }

    /// Send the request and wait for its reply.
    pub fn invoke(self) -> OrbResult<Reply> {
        self.invoke_inner(None)
    }

    /// Send the request and wait at most `timeout` for the reply. On
    /// timeout the connection is poisoned (a stale reply may still
    /// arrive); resolve a fresh reference to continue.
    pub fn invoke_timeout(self, timeout: std::time::Duration) -> OrbResult<Reply> {
        self.invoke_inner(Some(timeout))
    }

    fn invoke_inner(self, timeout: Option<std::time::Duration>) -> OrbResult<Reply> {
        let StaticRequest {
            target,
            operation,
            enc,
            err,
            idempotent,
            probe,
            mut span,
        } = self;
        if let Some(e) = err {
            return Err(e);
        }
        // One journey per logical request: every attempt below shares this
        // id and carries the cause that produced it. Allocating the id is
        // one relaxed fetch_add — no clock, no allocation — so the
        // disabled-telemetry data path stays zero-overhead.
        let journey_id = zc_trace::next_journey_id();
        let mut cause = if probe {
            zc_trace::JourneyCause::DegradeProbe
        } else {
            zc_trace::JourneyCause::Initial
        };
        // Marshal exactly once: retries resend the same finished bytes
        // (deposit blocks are reference-counted, so re-sending is cheap
        // and bit-identical — no double marshaling cost, no divergence).
        let finish_t0 = span.begin();
        let (args, deposits) = enc.finish();
        span.end(zc_trace::Stage::ClientMarshal, finish_t0);
        let policy = match &target.recovery {
            Some(r) => *r.orb.retry_policy(),
            None => RetryPolicy::none(),
        };
        let salt = target
            .recovery
            .as_ref()
            .map(|r| endpoint_salt(&r.active_target().0))
            .unwrap_or(0);
        let (expected_order, tele) = {
            let conn = target.conn.lock();
            (conn.wire_order(), Arc::clone(conn.telemetry()))
        };
        let mut attempt: u32 = 0;
        loop {
            attempt += 1;
            if let Some(r) = &target.recovery {
                if let Err(e) = r.orb.breaker_check(&r.active_target().0) {
                    // Fail-fast on the active profile — but for an object
                    // group, rotate to the next live replica instead of
                    // surfacing TRANSIENT: the call was never attempted
                    // (completed = NO), so any operation may move.
                    if !rotate_failover(&target, r, &tele) {
                        return Err(e);
                    }
                    cause = zc_trace::JourneyCause::Failover;
                }
            }
            // The conn mutex *is* the wire serializer: one request/reply
            // round-trip owns the connection end to end, and conn is a leaf
            // lock (nothing else is taken while held, so no ordering cycle
            // is possible). The guard IS dropped before try_recover runs;
            // the analysis is branch-insensitive about that.
            // zc-audit: allow(lock-held) — round-trip under the wire-serializing leaf lock
            let mut conn = target.conn.lock();
            // A connection poisoned by an earlier reply timeout carries no
            // further requests — and nothing has been sent on *this*
            // attempt, so any operation (idempotent or not) may move to a
            // fresh connection, or rotate to the next replica of a group.
            if conn.is_poisoned() {
                // The attempt existed but never reached the wire: record it
                // with a zero trace id (no stage timeline to join) so the
                // journey's ordinal chain stays contiguous for offline
                // reconstruction.
                tele.record_attempt(conn.trace_conn_id(), 0, cause, attempt - 1, journey_id);
                drop(conn);
                if let Some(c) = try_recover(&target, &policy, salt, attempt, &tele) {
                    cause = c;
                    continue;
                }
                return Err(OrbError::Protocol(
                    "connection poisoned by an earlier reply timeout; resolve a fresh one".into(),
                ));
            }
            // A replacement connection must accept the already-marshaled
            // bytes verbatim: same byte order, and descriptor-marshaled
            // deposits need a zero-copy connection. A mismatched renegotiation
            // cannot be healed transparently.
            if conn.wire_order() != expected_order || (!deposits.is_empty() && !conn.zc_active()) {
                return Err(comm_failure_maybe(3));
            }
            let start = tele.is_enabled().then(std::time::Instant::now);
            // The wire object key follows the active profile: replicas of
            // an object group may register the same object under
            // different keys.
            let wire_key: &[u8] = match &target.recovery {
                Some(r) => &r.active_target().1,
                None => &target.object_key,
            };
            // Stamp this attempt's journey coordinates (0-based ordinal)
            // into the next request's ZC_TRACE context.
            conn.set_journey(journey_id, attempt - 1, cause as u8);
            let id = match conn.send_request_raw(
                wire_key,
                &operation,
                true,
                &args,
                // zc-audit: allow(cheap-clone) — deposit descriptors (pointers + lengths), not payload bytes
                deposits.clone(),
            ) {
                Ok(id) => {
                    // The trace id now exists: commit the client-side
                    // marshal leg (commit clears its marks, so a retried
                    // attempt does not double-record it).
                    span.commit(&tele, conn.trace_conn_id(), conn.last_trace_id());
                    id
                }
                Err(e @ OrbError::Transport(TransportError::Closed)) => {
                    // The send itself failed: the request provably never
                    // reached a dispatcher, so *any* operation (idempotent
                    // or not) may retry on a fresh connection.
                    drop(conn);
                    if let Some(c) = try_recover(&target, &policy, salt, attempt, &tele) {
                        cause = c;
                        continue;
                    }
                    return Err(e);
                }
                Err(e) => return Err(e),
            };
            let result = match timeout {
                None => conn.recv_reply(id),
                Some(d) => conn.recv_reply_timeout(id, d),
            };
            match result {
                Ok(incoming) => {
                    if let Some(start) = start {
                        let elapsed = start.elapsed().as_nanos() as u64;
                        tele.metrics().request_latency_ns.record(elapsed);
                        tele.record(
                            TraceLayer::Orb,
                            EventKind::Invoke,
                            conn.trace_conn_id(),
                            conn.last_trace_id(),
                            elapsed,
                        );
                    }
                    let meter = conn.meter();
                    drop(conn);
                    if let Some(r) = &target.recovery {
                        r.note_success_and_maybe_reprobe(&target.conn, &policy, &tele);
                    }
                    return Ok(Reply { incoming, meter });
                }
                Err(e @ OrbError::Transport(TransportError::Timeout)) => {
                    // Timed out: the connection is poisoned (a stale reply
                    // may still arrive) and a CancelRequest was sent.
                    // NEVER retried — the request may be executing right
                    // now. Quarantine the connection so the next resolve
                    // dials fresh.
                    drop(conn);
                    if let Some(r) = &target.recovery {
                        let endpoint = &r.active_target().0;
                        r.orb.note_endpoint_failure(endpoint);
                        r.orb.quarantine(endpoint, &target.conn);
                    }
                    return Err(e);
                }
                Err(e) => {
                    let conn_dead = matches!(
                        e,
                        OrbError::Transport(_)
                            | OrbError::Protocol(_)
                            | OrbError::Giop(_)
                            | OrbError::Cdr(_)
                    );
                    if !conn_dead {
                        // A server-side shed (`TRANSIENT`, completed = NO)
                        // refused the request *before* dispatch: the wire
                        // worked but the replica is overloaded. Count it
                        // as failure evidence (sustained sheds open the
                        // breaker) and rotate *any* operation — idempotent
                        // or not — to the next live replica of the group.
                        if let OrbError::System(ex) = &e {
                            if crate::admission::is_shed(ex) {
                                drop(conn);
                                if let Some(r) = &target.recovery {
                                    r.orb.note_endpoint_failure(&r.active_target().0);
                                    if attempt < policy.max_attempts
                                        && rotate_failover(&target, r, &tele)
                                    {
                                        cause = zc_trace::JourneyCause::ShedRotate;
                                        continue;
                                    }
                                }
                                return Err(e);
                            }
                        }
                        // Any other System/User exception *is* a reply:
                        // the wire worked, the endpoint is healthy.
                        if matches!(e, OrbError::System(_)) {
                            if let Some(dump) = conn.post_mortem(16) {
                                eprintln!(
                                    "zcorba: invocation of {operation:?} failed: {e}\n{dump}"
                                );
                            }
                        }
                        drop(conn);
                        if let Some(r) = &target.recovery {
                            r.orb.note_endpoint_success(&r.active_target().0);
                        }
                        return Err(e);
                    }
                    // The connection died (or was garbled) after the
                    // request went out: it may or may not have executed.
                    if let Some(dump) = conn.post_mortem(16) {
                        eprintln!("zcorba: invocation of {operation:?} failed: {e}\n{dump}");
                    }
                    drop(conn);
                    // At-most-once: only caller-declared idempotent
                    // operations may run twice.
                    if idempotent {
                        if let Some(c) = try_recover(&target, &policy, salt, attempt, &tele) {
                            cause = c;
                            continue;
                        }
                    }
                    if !idempotent {
                        if let Some(r) = &target.recovery {
                            r.orb.note_endpoint_failure(&r.active_target().0);
                        }
                    }
                    // An oversized reply is a marshaling failure, not a
                    // communication one; everything else is COMM_FAILURE
                    // with completion status MAYBE.
                    return Err(match e {
                        OrbError::Giop(GiopError::MessageTooLarge(_)) => {
                            OrbError::System(SystemException {
                                kind: SystemExceptionKind::Marshal,
                                minor: 2,
                                completed: COMPLETED_MAYBE,
                            })
                        }
                        _ => comm_failure_maybe(1),
                    });
                }
            }
        }
    }

    /// Send the request without expecting a reply (IDL `oneway`).
    pub fn invoke_oneway(self) -> OrbResult<()> {
        let StaticRequest {
            target,
            operation,
            enc,
            err,
            idempotent: _,
            probe: _,
            span: _,
        } = self;
        if let Some(e) = err {
            return Err(e);
        }
        // zc-audit: allow(lock-held) — oneway send under the wire-serializing leaf lock; no reply is awaited
        let mut conn = target.conn.lock();
        let wire_key: &[u8] = match &target.recovery {
            Some(r) => &r.active_target().1,
            None => &target.object_key,
        };
        conn.send_request(wire_key, &operation, false, enc)?;
        Ok(())
    }
}

/// `COMM_FAILURE` with completion status MAYBE: the request may or may not
/// have executed — the CORBA answer when at-most-once forbids a retry.
fn comm_failure_maybe(minor: u32) -> OrbError {
    OrbError::System(SystemException {
        kind: SystemExceptionKind::CommFailure,
        minor,
        completed: COMPLETED_MAYBE,
    })
}

/// Attempt one recovery step for `target`: record the failure, back off,
/// and swap a freshly dialed connection into the shared slot. Returns the
/// journey cause of the retry the caller should now make — `Retry` when the
/// same profile answered a fresh dial, `Failover` when the reference
/// rotated to another replica — or `None` when recovery failed and the
/// caller must surface the error.
fn try_recover(
    target: &ObjectRef,
    policy: &RetryPolicy,
    salt: u64,
    attempt: u32,
    tele: &Arc<zc_trace::Telemetry>,
) -> Option<zc_trace::JourneyCause> {
    let r = target.recovery.as_ref()?;
    // Note: a failed send on a stale cached connection is not breaker
    // evidence — the dial below tells the truth about the endpoint
    // (reconnect_shared records its own failures).
    if attempt >= policy.max_attempts {
        return None;
    }
    std::thread::sleep(policy.backoff(attempt, salt));
    let cause = if r
        .orb
        .reconnect_shared(&r.active_target().0, &target.conn, r.cached)
        .is_ok()
    {
        zc_trace::JourneyCause::Retry
    } else if rotate_failover(target, r, tele) {
        // The active profile refused the dial (down, or breaker open):
        // for an object group the retry may land on the next live replica.
        zc_trace::JourneyCause::Failover
    } else {
        return None;
    };
    if tele.is_enabled() {
        tele.metrics().retries.incr();
    }
    tele.note_retry();
    tele.record(
        TraceLayer::Orb,
        EventKind::Retry,
        target.conn.lock().trace_conn_id(),
        0,
        attempt as u64,
    );
    Some(cause)
}

/// A successful reply; demarshal results in declaration order.
#[derive(Debug)]
pub struct Reply {
    incoming: IncomingReply,
    meter: Arc<zc_buffers::CopyMeter>,
}

impl Reply {
    /// Demarshal the (single) result value.
    pub fn result<T: CdrMarshal>(self) -> OrbResult<T> {
        let mut results = self.results();
        results.next()
    }

    /// Iterate multiple out-values.
    pub fn results(self) -> ReplyResults {
        let IncomingReply {
            body,
            results_offset,
            deposits,
            order,
            zc,
        } = self.incoming;
        ReplyResults {
            body,
            offset: results_offset,
            slots: deposits.into_iter().map(Some).collect(),
            order,
            zc,
            meter: self.meter,
        }
    }

    /// Peek at the first deposited block, if any (fast path for streaming
    /// consumers that want the raw pages).
    pub fn first_deposit(&self) -> Option<ZcBytes> {
        self.incoming.deposits.first().cloned()
    }
}

/// Sequential access to a reply's out-values.
pub struct ReplyResults {
    body: Vec<u8>,
    offset: usize,
    slots: Vec<Option<ZcBytes>>,
    order: zc_cdr::ByteOrder,
    zc: bool,
    meter: Arc<zc_buffers::CopyMeter>,
}

impl ReplyResults {
    /// Demarshal the next out-value. (Named distinctly from
    /// `Iterator::next` — results are heterogeneous, so this cannot be an
    /// iterator.)
    #[allow(clippy::should_implement_trait)]
    pub fn next<T: CdrMarshal>(&mut self) -> OrbResult<T> {
        // Rebuild a decoder positioned at the current offset; deposit slots
        // persist across calls so descriptor indices stay stable.
        let slots = std::mem::take(&mut self.slots);
        let mut dec = CdrDecoder::new(&self.body, self.order).with_meter(Arc::clone(&self.meter));
        if self.zc {
            dec = dec.with_deposit_slots(slots);
        }
        dec.skip(self.offset).map_err(OrbError::from)?;
        let v = T::demarshal(&mut dec)?;
        self.offset = dec.position();
        self.slots = dec.into_deposit_slots();
        Ok(v)
    }
}
