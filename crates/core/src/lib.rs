//! The zcorba Object Request Broker — a CORBA-style ORB with a zero-copy
//! bulk-data path.
//!
//! This crate is the Rust analogue of the modified MICO ORB of the paper:
//! the same layering (stub → static request → IIOP proxy → GIOP connection →
//! transport, mirrored on the server by a callback-driven receive loop,
//! demarshaling, and a method dispatcher), extended exactly where the paper
//! extends MICO:
//!
//! * a zero-copy sequence type ([`zc_cdr::ZcOctetSeq`]) whose marshaling is
//!   bypassed on negotiated connections;
//! * **separation of control- and data transfers** inside the connection:
//!   the GIOP Request/Reply (control) announces deposit blocks via a
//!   service-context manifest, and the blocks travel on the transport's
//!   data path straight into page-aligned buffers (§4.4/§4.5);
//! * per-connection negotiation of architecture and capability, falling
//!   back transparently to fully-marshaled IIOP for heterogeneous or
//!   ZC-unaware peers.
//!
//! ## Quick tour
//!
//! ```
//! use std::sync::Arc;
//! use zc_orb::{Orb, ObjectAdapterExt, Servant, ServerRequest, OrbResult};
//! use zc_cdr::ZcOctetSeq;
//! use zc_transport::{SimConfig, SimNetwork};
//!
//! struct Echo;
//! impl Servant for Echo {
//!     fn repo_id(&self) -> &'static str { "IDL:zcorba/Echo:1.0" }
//!     fn dispatch(&self, op: &str, req: &mut ServerRequest<'_>) -> OrbResult<()> {
//!         match op {
//!             "echo" => {
//!                 let data: ZcOctetSeq = req.arg()?;
//!                 req.result(&data)
//!             }
//!             _ => req.bad_operation(op),
//!         }
//!     }
//! }
//!
//! let net = SimNetwork::new(SimConfig::zero_copy());
//! let server_orb = Orb::builder().sim(net.clone()).build();
//! server_orb.adapter().register("echo-1", Arc::new(Echo));
//! let server = server_orb.serve(0).unwrap();
//! let ior = server.ior_for("echo-1", "IDL:zcorba/Echo:1.0").unwrap();
//!
//! let client_orb = Orb::builder().sim(net).build();
//! let obj = client_orb.resolve(&ior).unwrap();
//! let payload = ZcOctetSeq::with_length(1 << 16);
//! let reply = obj.request("echo").arg(&payload).unwrap().invoke().unwrap();
//! let back: ZcOctetSeq = reply.result().unwrap();
//! assert_eq!(back.len(), payload.len());
//! server.shutdown();
//! ```

pub mod adapter;
pub mod admission;
pub mod collective;
pub mod conn;
pub mod introspect;
pub mod naming;
pub mod orb;
pub mod proxy;
pub mod retry;

pub use adapter::{ObjectAdapter, ObjectAdapterExt, Servant, ServerRequest};
pub use admission::{AdmissionConfig, AdmissionControl, AdmissionTicket, ShedReason};
pub use collective::{partition_into, ParGroup};
pub use conn::{ConnTuning, GiopConn};
pub use introspect::{TelemetryClient, TelemetryServant, MAX_TIMELINES};
pub use naming::{install_name_service, NamingClient, NamingContextServant};
pub use orb::{Orb, OrbBuilder, OrbConfig, ServerHandle};
pub use proxy::{ObjectRef, Reply, StaticRequest};
pub use retry::RetryPolicy;

use zc_cdr::CdrError;
use zc_giop::{GiopError, SystemException};
use zc_transport::TransportError;

/// Errors surfaced by ORB operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OrbError {
    /// Transport-level failure.
    Transport(TransportError),
    /// GIOP protocol failure.
    Giop(GiopError),
    /// CDR (de)marshaling failure.
    Cdr(CdrError),
    /// The server raised a CORBA system exception.
    System(SystemException),
    /// The server raised a declared (IDL `raises`) user exception; decode
    /// the members with [`UserExceptionData::decode`].
    User(UserExceptionData),
    /// Local protocol violation (mismatched reply ids, bad state, …).
    Protocol(String),
    /// The IOR cannot be resolved by this ORB's transport.
    Unresolvable(String),
}

impl From<TransportError> for OrbError {
    fn from(e: TransportError) -> Self {
        OrbError::Transport(e)
    }
}

impl From<GiopError> for OrbError {
    fn from(e: GiopError) -> Self {
        OrbError::Giop(e)
    }
}

impl From<CdrError> for OrbError {
    fn from(e: CdrError) -> Self {
        OrbError::Cdr(e)
    }
}

impl From<SystemException> for OrbError {
    fn from(e: SystemException) -> Self {
        OrbError::System(e)
    }
}

impl std::fmt::Display for OrbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OrbError::Transport(e) => write!(f, "transport: {e}"),
            OrbError::Giop(e) => write!(f, "giop: {e}"),
            OrbError::Cdr(e) => write!(f, "cdr: {e}"),
            OrbError::System(e) => write!(f, "system exception: {e}"),
            OrbError::User(u) => write!(f, "user exception: {}", u.repo_id),
            OrbError::Protocol(s) => write!(f, "orb protocol: {s}"),
            OrbError::Unresolvable(s) => write!(f, "unresolvable reference: {s}"),
        }
    }
}

impl std::error::Error for OrbError {}

/// Result alias for ORB operations.
pub type OrbResult<T> = Result<T, OrbError>;

/// The wire form of a raised user exception: its repository id plus the
/// still-encoded member body. Typed bindings (hand-written or generated by
/// `zc-idlc`) call [`UserExceptionData::decode`] to recover the members.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UserExceptionData {
    /// CORBA repository id of the exception type.
    pub repo_id: String,
    /// CDR-encoded members (own encoding origin).
    pub body: Vec<u8>,
    /// Byte order of `body`.
    pub order: zc_cdr::ByteOrder,
}

impl UserExceptionData {
    /// Decode the members as `T` if the repository id matches.
    pub fn decode<T: zc_cdr::CdrMarshal>(&self, repo_id: &str) -> Option<T> {
        if self.repo_id != repo_id {
            return None;
        }
        let mut dec = zc_cdr::CdrDecoder::new(&self.body, self.order);
        T::demarshal(&mut dec).ok()
    }
}

/// Build the error a servant returns to raise a declared user exception:
/// `return Err(raise_user("IDL:app/Conflict:1.0", &members));`
pub fn raise_user<T: zc_cdr::CdrMarshal>(repo_id: &str, members: &T) -> OrbError {
    let mut enc = zc_cdr::CdrEncoder::native();
    // Infallible for well-formed values; a marshal failure degrades to an
    // internal error rather than panicking the servant.
    if members.marshal(&mut enc).is_err() {
        return OrbError::Protocol(format!("failed to marshal user exception {repo_id}"));
    }
    OrbError::User(UserExceptionData {
        repo_id: repo_id.to_string(),
        body: enc.finish_stream(),
        order: zc_cdr::ByteOrder::native(),
    })
}
