//! Server-side admission control: bounded dispatch queues with early
//! shedding and a watermark-based brownout mode.
//!
//! An overloaded thread-per-connection server fails in a characteristic
//! way: every connection keeps reading requests, every request pins
//! deposit pages and queues for dispatch, and once the offered load passes
//! saturation *all* requests finish late — goodput collapses even though
//! the server is doing maximal work. Admission control converts that
//! collapse into a plateau by refusing work it cannot finish in time,
//! **before** the expensive part of the receive path runs:
//!
//! * the gate sits between GIOP request-header decode and deposit
//!   collection, so a shed request never pins pool pages and never enters
//!   the dispatcher — the refusal costs one small `TRANSIENT` reply;
//! * the budget is two-dimensional (in-flight **requests** and announced
//!   in-flight **bytes**), because a queue of tiny control calls and a
//!   queue of multi-megabyte deposits saturate different resources;
//! * a **brownout** watermark below the hard budget sheds only bulk
//!   zero-copy deposits while still admitting small calls, degrading the
//!   data plane first;
//! * a **reserved lane** keeps control-plane objects (keys in the
//!   reserved `_`-prefix namespace, e.g. the `_ZcTelemetry` introspection
//!   object) answerable up to the hard cap, so operators can still observe
//!   a saturated server — the moment you most need telemetry is exactly
//!   when the data plane is drowning.
//!
//! Shed replies are `TRANSIENT` with `completed = NO`: the request was
//! provably never dispatched, so the client may safely retry **any**
//! operation — or, for a replicated object group, rotate to the next
//! profile (see `proxy.rs`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use zc_cdr::wire::zc_vendor_id;
use zc_giop::{SystemException, SystemExceptionKind};

/// `TRANSIENT` minor code for a hard-budget shed (zcorba vendor space).
pub const MINOR_SHED_QUEUE_FULL: u32 = zc_vendor_id(0x20);
/// `TRANSIENT` minor code for a brownout (bulk-deposit) shed.
pub const MINOR_SHED_BROWNOUT: u32 = zc_vendor_id(0x21);
/// CORBA completion status `COMPLETED_NO` — shed before dispatch.
const COMPLETED_NO: u32 = 1;

/// Budgets and watermarks for one ORB's dispatch queue. The default is
/// unlimited (admission control disabled); [`AdmissionConfig::bounded`]
/// derives sensible watermarks from the two hard budgets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Hard cap on concurrently admitted requests (dispatch queue depth
    /// across all connections).
    pub max_requests: u64,
    /// Hard cap on the sum of announced deposit bytes in flight.
    pub max_bytes: u64,
    /// Brownout watermark: at or above this many in-flight requests, bulk
    /// (deposit-carrying) requests are shed while small calls still pass.
    pub brownout_requests: u64,
    /// Brownout watermark on announced in-flight bytes.
    pub brownout_bytes: u64,
    /// Request slots reserved for control-plane objects (reserved-key
    /// namespace, `_`-prefix): data-plane requests are shed this many
    /// slots early so `_ZcTelemetry` polls keep answering under overload.
    pub control_reserve: u64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            max_requests: u64::MAX,
            max_bytes: u64::MAX,
            brownout_requests: u64::MAX,
            brownout_bytes: u64::MAX,
            control_reserve: 0,
        }
    }
}

impl AdmissionConfig {
    /// A bounded queue with derived watermarks: brownout begins at 3/4 of
    /// either hard budget, and 1/8 of the request slots (at least one) are
    /// reserved for the control-plane lane.
    pub fn bounded(max_requests: u64, max_bytes: u64) -> AdmissionConfig {
        AdmissionConfig {
            max_requests,
            max_bytes,
            brownout_requests: max_requests - max_requests / 4,
            brownout_bytes: max_bytes - max_bytes / 4,
            control_reserve: (max_requests / 8).max(1).min(max_requests),
        }
    }

    /// Whether this configuration can ever shed.
    pub fn is_unlimited(&self) -> bool {
        self.max_requests == u64::MAX
            && self.max_bytes == u64::MAX
            && self.brownout_requests == u64::MAX
            && self.brownout_bytes == u64::MAX
    }
}

/// Why a request was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// A hard budget (request slots or byte budget) is exhausted.
    QueueFull,
    /// The brownout watermark is reached and the request carries bulk
    /// deposits; small calls would still be admitted.
    Brownout,
}

impl ShedReason {
    /// The wire exception for this shed: `TRANSIENT`, `completed = NO`
    /// (never dispatched — safe for the client to retry or fail over).
    pub fn exception(self) -> SystemException {
        SystemException {
            kind: SystemExceptionKind::Transient,
            minor: match self {
                ShedReason::QueueFull => MINOR_SHED_QUEUE_FULL,
                ShedReason::Brownout => MINOR_SHED_BROWNOUT,
            },
            completed: COMPLETED_NO,
        }
    }
}

/// Classify an error as a server-side shed (`TRANSIENT`, `completed=NO`,
/// zcorba shed minor code). Used by clients deciding whether a failure is
/// overload (rotate/fail over) or something structural.
pub fn is_shed(ex: &SystemException) -> bool {
    ex.kind == SystemExceptionKind::Transient
        && ex.completed == COMPLETED_NO
        && (ex.minor == MINOR_SHED_QUEUE_FULL || ex.minor == MINOR_SHED_BROWNOUT)
}

#[derive(Debug)]
struct AdmissionState {
    config: AdmissionConfig,
    inflight_requests: AtomicU64,
    inflight_bytes: AtomicU64,
}

/// The admission gate shared by every connection thread of one ORB.
/// Cheap to clone; owns its own counters so it works (and sheds) even
/// with telemetry disabled.
#[derive(Debug, Clone)]
pub struct AdmissionControl {
    state: Arc<AdmissionState>,
}

/// A successfully admitted request's reservation. Releases its request
/// slot and byte budget on drop — panic-safe: a dispatcher that unwinds
/// still returns its capacity.
#[derive(Debug)]
pub struct AdmissionTicket {
    state: Arc<AdmissionState>,
    bytes: u64,
}

impl Drop for AdmissionTicket {
    fn drop(&mut self) {
        self.state.inflight_requests.fetch_sub(1, Ordering::AcqRel);
        self.state
            .inflight_bytes
            .fetch_sub(self.bytes, Ordering::AcqRel);
    }
}

impl AdmissionControl {
    /// Build a gate from a configuration.
    pub fn new(config: AdmissionConfig) -> AdmissionControl {
        AdmissionControl {
            state: Arc::new(AdmissionState {
                config,
                inflight_requests: AtomicU64::new(0),
                inflight_bytes: AtomicU64::new(0),
            }),
        }
    }

    /// A gate that admits everything (the default ORB behavior).
    pub fn unlimited() -> AdmissionControl {
        AdmissionControl::new(AdmissionConfig::default())
    }

    /// The configured budgets.
    pub fn config(&self) -> &AdmissionConfig {
        &self.state.config
    }

    /// Currently admitted `(requests, announced_bytes)` (diagnostics).
    pub fn inflight(&self) -> (u64, u64) {
        (
            self.state.inflight_requests.load(Ordering::Acquire),
            self.state.inflight_bytes.load(Ordering::Acquire),
        )
    }

    /// Decide one request's fate. `control_plane` marks reserved-key
    /// (`_`-prefix) objects that ride the reserved lane; `announced_bytes`
    /// is the deposit-manifest total (0 without deposits); `bulk` marks
    /// deposit-carrying requests (the ones brownout sheds first).
    ///
    /// On `Ok`, the returned ticket holds the reservation until dropped.
    pub fn admit(
        &self,
        control_plane: bool,
        announced_bytes: u64,
        bulk: bool,
    ) -> Result<AdmissionTicket, ShedReason> {
        let cfg = &self.state.config;
        // Optimistically reserve, then validate; the undo on the shed path
        // makes transient over-count harmless (it only sheds *earlier*).
        let prior_reqs = self.state.inflight_requests.fetch_add(1, Ordering::AcqRel);
        let prior_bytes = self
            .state
            .inflight_bytes
            .fetch_add(announced_bytes, Ordering::AcqRel);
        let total_bytes = prior_bytes.saturating_add(announced_bytes);

        // Reserved lane: data-plane requests stop `control_reserve` slots
        // below the hard cap; control-plane requests may use them all.
        let slot_cap = if control_plane {
            cfg.max_requests
        } else {
            cfg.max_requests.saturating_sub(cfg.control_reserve)
        };
        let reason = if prior_reqs >= slot_cap || total_bytes > cfg.max_bytes {
            Some(ShedReason::QueueFull)
        } else if !control_plane
            && bulk
            && (prior_reqs >= cfg.brownout_requests || total_bytes > cfg.brownout_bytes)
        {
            Some(ShedReason::Brownout)
        } else {
            None
        };
        match reason {
            None => Ok(AdmissionTicket {
                state: Arc::clone(&self.state),
                bytes: announced_bytes,
            }),
            Some(r) => {
                self.state.inflight_requests.fetch_sub(1, Ordering::AcqRel);
                self.state
                    .inflight_bytes
                    .fetch_sub(announced_bytes, Ordering::AcqRel);
                Err(r)
            }
        }
    }
}

/// Whether `object_key` addresses a control-plane object (the reserved
/// `_`-prefix key namespace, e.g. `_ZcTelemetry`).
pub fn is_control_plane_key(object_key: &[u8]) -> bool {
    object_key.first() == Some(&b'_')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_admits_everything() {
        let gate = AdmissionControl::unlimited();
        assert!(gate.config().is_unlimited());
        let mut tickets = Vec::new();
        for i in 0..256 {
            tickets.push(gate.admit(false, 1 << 20, i % 2 == 0).unwrap());
        }
        assert_eq!(gate.inflight().0, 256);
        drop(tickets);
        assert_eq!(gate.inflight(), (0, 0));
    }

    #[test]
    fn hard_request_budget_sheds_queue_full() {
        let gate = AdmissionControl::new(AdmissionConfig {
            max_requests: 2,
            control_reserve: 0,
            ..AdmissionConfig::default()
        });
        let t1 = gate.admit(false, 0, false).unwrap();
        let _t2 = gate.admit(false, 0, false).unwrap();
        assert!(matches!(
            gate.admit(false, 0, false),
            Err(ShedReason::QueueFull)
        ));
        // Releasing a slot re-admits.
        drop(t1);
        assert!(gate.admit(false, 0, false).is_ok());
    }

    #[test]
    fn byte_budget_sheds_and_releases() {
        let gate = AdmissionControl::new(AdmissionConfig {
            max_bytes: 1000,
            brownout_bytes: u64::MAX,
            ..AdmissionConfig::default()
        });
        let t = gate.admit(false, 900, true).unwrap();
        assert!(matches!(
            gate.admit(false, 200, true),
            Err(ShedReason::QueueFull)
        ));
        // A shed must not leak its optimistic reservation.
        assert_eq!(gate.inflight(), (1, 900));
        drop(t);
        assert!(gate.admit(false, 1000, true).is_ok());
    }

    #[test]
    fn brownout_sheds_bulk_but_admits_small_calls() {
        let gate = AdmissionControl::new(AdmissionConfig {
            max_requests: 8,
            brownout_requests: 2,
            control_reserve: 0,
            ..AdmissionConfig::default()
        });
        let _t1 = gate.admit(false, 4096, true).unwrap();
        let _t2 = gate.admit(false, 4096, true).unwrap();
        // Watermark reached: bulk sheds (brownout), small calls pass.
        assert!(matches!(
            gate.admit(false, 4096, true),
            Err(ShedReason::Brownout)
        ));
        assert!(gate.admit(false, 0, false).is_ok());
    }

    #[test]
    fn reserved_lane_keeps_control_plane_answerable() {
        let gate = AdmissionControl::new(AdmissionConfig {
            max_requests: 2,
            control_reserve: 1,
            ..AdmissionConfig::default()
        });
        let _t = gate.admit(false, 0, false).unwrap();
        // Data plane stops one slot early; the telemetry lane still admits.
        assert!(matches!(
            gate.admit(false, 0, false),
            Err(ShedReason::QueueFull)
        ));
        let _c = gate.admit(true, 0, false).unwrap();
        // …but control is bounded by the hard cap too.
        assert!(matches!(
            gate.admit(true, 0, false),
            Err(ShedReason::QueueFull)
        ));
    }

    #[test]
    fn shed_exceptions_are_transient_completed_no() {
        for (reason, minor) in [
            (ShedReason::QueueFull, MINOR_SHED_QUEUE_FULL),
            (ShedReason::Brownout, MINOR_SHED_BROWNOUT),
        ] {
            let ex = reason.exception();
            assert_eq!(ex.kind, SystemExceptionKind::Transient);
            assert_eq!(ex.minor, minor);
            assert_eq!(ex.completed, COMPLETED_NO, "shed is pre-dispatch");
            assert!(is_shed(&ex));
        }
        // A garden-variety TRANSIENT (breaker fail-fast) is not a shed.
        assert!(!is_shed(&SystemException {
            kind: SystemExceptionKind::Transient,
            minor: 1,
            completed: COMPLETED_NO,
        }));
    }

    #[test]
    fn control_plane_keys_use_the_reserved_prefix() {
        assert!(is_control_plane_key(zc_cdr::wire::ZC_TELEMETRY_KEY));
        assert!(is_control_plane_key(b"_anything"));
        assert!(!is_control_plane_key(b"bulk-1"));
        assert!(!is_control_plane_key(b""));
    }

    #[test]
    fn bounded_derives_watermarks_and_reserve() {
        let c = AdmissionConfig::bounded(32, 1 << 20);
        assert_eq!(c.brownout_requests, 24);
        assert_eq!(c.brownout_bytes, (1 << 20) - (1 << 18));
        assert_eq!(c.control_reserve, 4);
        assert!(!c.is_unlimited());
        // Tiny budgets still reserve one control slot (never more than all).
        assert_eq!(AdmissionConfig::bounded(1, 64).control_reserve, 1);
    }

    #[test]
    fn ticket_release_is_panic_safe() {
        let gate = AdmissionControl::new(AdmissionConfig {
            max_requests: 1,
            control_reserve: 0,
            ..AdmissionConfig::default()
        });
        let g2 = gate.clone();
        let _ = std::panic::catch_unwind(move || {
            let _t = g2.admit(false, 7, false).unwrap();
            panic!("dispatcher died");
        });
        assert_eq!(gate.inflight(), (0, 0), "unwind returned the capacity");
        assert!(gate.admit(false, 0, false).is_ok());
    }
}
