//! A CORBA Naming Service — the bootstrap substrate every real CORBA
//! deployment relies on (`resolve_initial_references("NameService")`).
//!
//! Implemented *on top of* the public ORB API: the service is an ordinary
//! servant ([`NamingContextServant`]) binding names to stringified IORs,
//! and [`NamingClient`] is an ordinary typed stub. Applications then need
//! exactly one well-known endpoint instead of shuttling IOR strings by
//! hand.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use zc_giop::{Ior, SystemException, SystemExceptionKind};

use crate::adapter::{ObjectAdapterExt, Servant, ServerRequest};
use crate::orb::{Orb, ServerHandle};
use crate::proxy::ObjectRef;
use crate::{OrbError, OrbResult};

/// The conventional object key of the name service.
pub const NAME_SERVICE_KEY: &str = "NameService";

/// Repository id of the naming context interface.
pub const NAMING_REPO_ID: &str = "IDL:zcorba/NamingContext:1.0";

/// Minor code used on `OBJECT_NOT_EXIST` when a name is unbound (in the
/// zcorba vendor space, clear of the service-context ids).
pub const MINOR_UNBOUND_NAME: u32 = zc_cdr::wire::zc_vendor_id(0x10);

/// The name-service servant: a flat `name → IOR` table.
///
/// Operations: `bind(name, ior) -> bool(replaced)`,
/// `resolve(name) -> ior-string`, `unbind(name) -> bool`,
/// `list() -> sequence<string>`.
#[derive(Default)]
pub struct NamingContextServant {
    bindings: RwLock<HashMap<String, String>>,
}

impl NamingContextServant {
    /// Fresh, empty context.
    pub fn new() -> NamingContextServant {
        NamingContextServant::default()
    }

    /// Number of bindings (diagnostics).
    pub fn len(&self) -> usize {
        self.bindings.read().len()
    }

    /// Whether no names are bound.
    pub fn is_empty(&self) -> bool {
        self.bindings.read().is_empty()
    }
}

impl Servant for NamingContextServant {
    fn repo_id(&self) -> &'static str {
        NAMING_REPO_ID
    }
    fn dispatch(&self, op: &str, req: &mut ServerRequest<'_>) -> OrbResult<()> {
        match op {
            "bind" => {
                let name: String = req.arg()?;
                let ior: String = req.arg()?;
                // validate before storing: a bad IOR must fail at bind
                // time, not at some future resolve
                if Ior::from_ior_string(&ior).is_err() {
                    return req.raise(SystemException::new(SystemExceptionKind::Marshal, 2));
                }
                let replaced = self.bindings.write().insert(name, ior).is_some();
                req.result(&replaced)
            }
            "resolve" => {
                let name: String = req.arg()?;
                match self.bindings.read().get(&name) {
                    Some(ior) => req.result(ior),
                    None => req.raise(SystemException::new(
                        SystemExceptionKind::ObjectNotExist,
                        MINOR_UNBOUND_NAME,
                    )),
                }
            }
            "unbind" => {
                let name: String = req.arg()?;
                let removed = self.bindings.write().remove(&name).is_some();
                req.result(&removed)
            }
            "list" => {
                let mut names: Vec<String> = self.bindings.read().keys().cloned().collect();
                names.sort();
                req.result(&names)
            }
            other => req.bad_operation(other),
        }
    }
}

/// Install a name service on a serving ORB; returns its IOR.
pub fn install_name_service(orb: &Orb, server: &ServerHandle) -> OrbResult<Ior> {
    orb.adapter()
        .register(NAME_SERVICE_KEY, Arc::new(NamingContextServant::new()));
    server.ior_for(NAME_SERVICE_KEY, NAMING_REPO_ID)
}

/// Typed client stub for the naming context.
#[derive(Clone)]
pub struct NamingClient {
    obj: ObjectRef,
}

impl NamingClient {
    /// Wrap a resolved reference.
    pub fn new(obj: ObjectRef) -> NamingClient {
        NamingClient { obj }
    }

    /// Connect to the name service at a well-known endpoint.
    pub fn connect(orb: &Orb, host: &str, port: u16) -> OrbResult<NamingClient> {
        let ior = Ior::new_iiop(NAMING_REPO_ID, host, port, NAME_SERVICE_KEY.as_bytes());
        Ok(NamingClient {
            obj: orb.resolve(&ior)?,
        })
    }

    /// Bind (or rebind) `name` to an object reference. Returns whether a
    /// previous binding was replaced.
    pub fn bind(&self, name: &str, ior: &Ior) -> OrbResult<bool> {
        self.obj
            .request("bind")
            .arg(&name.to_string())?
            .arg(&ior.to_ior_string())?
            .invoke()?
            .result()
    }

    /// Bind `name` to a replicated object group: the members' profile
    /// lists are merged into one multi-profile IOR (the first member is
    /// the primary, the rest fail-over replicas in order) and bound like
    /// any other name. Whoever resolves the name gets failover-aware
    /// routing for free — the wire protocol is unchanged.
    pub fn bind_group(&self, name: &str, members: &[Ior]) -> OrbResult<bool> {
        let group = Ior::merge_group(members)?;
        self.bind(name, &group)
    }

    /// Resolve `name` to an IOR.
    pub fn resolve_name(&self, name: &str) -> OrbResult<Ior> {
        let s: String = self
            .obj
            .request("resolve")
            .arg(&name.to_string())?
            .invoke()?
            .result()?;
        Ok(Ior::from_ior_string(&s)?)
    }

    /// Resolve `name` all the way to a connected object reference.
    pub fn resolve_object(&self, orb: &Orb, name: &str) -> OrbResult<ObjectRef> {
        orb.resolve(&self.resolve_name(name)?)
    }

    /// Remove a binding. Returns whether it existed.
    pub fn unbind(&self, name: &str) -> OrbResult<bool> {
        self.obj
            .request("unbind")
            .arg(&name.to_string())?
            .invoke()?
            .result()
    }

    /// All bound names, sorted.
    pub fn list(&self) -> OrbResult<Vec<String>> {
        self.obj.request("list").invoke()?.result()
    }
}

/// Classify a resolve error: was it just an unbound name?
pub fn is_unbound_name(err: &OrbError) -> bool {
    matches!(
        err,
        OrbError::System(ex)
            if ex.kind == SystemExceptionKind::ObjectNotExist && ex.minor == MINOR_UNBOUND_NAME
    )
}
