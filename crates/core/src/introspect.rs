//! The in-band introspection plane: the reserved `_ZcTelemetry` object.
//!
//! Every ORB auto-registers a [`TelemetryServant`] in its object adapter
//! under the wire-constant key [`zc_cdr::wire::ZC_TELEMETRY_KEY`], so any
//! peer that can speak plain GIOP to the server can read its telemetry —
//! the monitoring plane *is* the object plane, SLS-style, with no side
//! channel to deploy or secure separately. Design constraints:
//!
//! * **Inline-path only.** Every reply is a `String` (or `u32`), which
//!   marshals on the conventional CDR path. Introspection therefore keeps
//!   working when the connection has degraded ZC→copy, when the peer is
//!   foreign, or when the deposit path itself is what an operator is
//!   debugging.
//! * **Idempotent.** All operations are pure reads; the client wrapper
//!   marks them `.idempotent()` so the retry machinery may re-poll after
//!   reply loss without at-most-once hazards.
//! * **Clamped.** The one operation that takes a wire argument
//!   (`timelines`, a requested span count) clamps it to
//!   [`MAX_TIMELINES`]; a hostile poller cannot size server work or
//!   allocations beyond that. Snapshot renders are bounded by the fixed
//!   registry/ring sizes.

use std::fmt::Write as _;
use std::sync::Arc;

use zc_buffers::{CopyMeter, PagePool};
use zc_cdr::wire::{ZC_TELEMETRY_KEY, ZC_TELEMETRY_REPO_ID};
use zc_giop::Ior;
use zc_trace::{prometheus_text, span_timelines, OrbTelemetry, Stage, Telemetry};

use crate::adapter::{Servant, ServerRequest};
use crate::orb::Orb;
use crate::proxy::ObjectRef;
use crate::OrbResult;

/// Hard cap on the number of span timelines one `timelines` call returns.
/// The request argument is attacker-controlled; this clamp bounds both the
/// render size and the work a poll can demand.
pub const MAX_TIMELINES: u32 = 64;

/// The servant behind the reserved `_ZcTelemetry` key.
pub struct TelemetryServant {
    telemetry: Arc<Telemetry>,
    meter: Arc<CopyMeter>,
    pool: PagePool,
}

impl TelemetryServant {
    /// Bundle the ORB's accounting handles. Called by `OrbBuilder::build`;
    /// user code never constructs one.
    pub(crate) fn new(
        telemetry: Arc<Telemetry>,
        meter: Arc<CopyMeter>,
        pool: PagePool,
    ) -> TelemetryServant {
        TelemetryServant {
            telemetry,
            meter,
            pool,
        }
    }

    fn snapshot(&self) -> OrbTelemetry {
        self.telemetry
            .orb_snapshot(self.meter.snapshot(), self.pool.stats())
    }

    /// Decode the `timelines` operation's wire argument. This is the one
    /// place untrusted request bytes become a value in this module, and it
    /// is a configured zc-audit taint entrypoint: the count is clamped to
    /// [`MAX_TIMELINES`] before it can size any downstream work.
    fn decode(req: &mut ServerRequest<'_>) -> OrbResult<u32> {
        let requested: u32 = req.arg()?;
        Ok(requested.min(MAX_TIMELINES))
    }

    fn timelines_text(&self, max: usize) -> String {
        if !self.telemetry.is_enabled() {
            return "telemetry disabled\n".to_string();
        }
        let events = self.telemetry.recorder().events();
        let timelines = span_timelines(&events);
        let start = timelines.len().saturating_sub(max);
        let mut out = String::new();
        for tl in &timelines[start..] {
            let _ = write!(
                out,
                "trace {:>6}  stages {:>2}  critical_path_ns {:>12} ",
                tl.trace_id,
                tl.stage_count(),
                tl.critical_path_ns()
            );
            for stage in Stage::ALL {
                if let Some(s) = tl.get(stage) {
                    let _ = write!(out, " {}={}", stage.name(), s.dur_ns);
                }
            }
            out.push('\n');
        }
        if out.is_empty() {
            out.push_str("no complete spans recorded\n");
        }
        out
    }
}

impl Servant for TelemetryServant {
    fn repo_id(&self) -> &'static str {
        ZC_TELEMETRY_REPO_ID
    }

    fn dispatch(&self, op: &str, req: &mut ServerRequest<'_>) -> OrbResult<()> {
        match op {
            // Liveness probe; also lets pollers measure management RTT.
            "ping" => req.result(&1u32),
            // The full OrbTelemetry snapshot as JSON lines (the machine
            // format zc-top consumes).
            "snapshot_json" => req.result(&self.snapshot().json_lines()),
            // The human text table.
            "snapshot_text" => req.result(&self.snapshot().text_table()),
            // Prometheus text exposition of the same snapshot.
            "prometheus" => req.result(&prometheus_text(&self.snapshot())),
            // The most recent span timelines, newest last.
            "timelines" => {
                let max = Self::decode(req)?;
                req.result(&self.timelines_text(max as usize))
            }
            other => req.bad_operation(other),
        }
    }
}

/// Client-side wrapper for a remote `_ZcTelemetry` object.
///
/// All calls are marked idempotent: they are pure reads, safe to re-send
/// after reply loss.
pub struct TelemetryClient {
    obj: ObjectRef,
}

impl TelemetryClient {
    /// Resolve the reserved `_ZcTelemetry` object at `host:port` over a
    /// *private* connection, so polling never serializes behind the
    /// caller's data traffic on a shared connection.
    pub fn connect(orb: &Orb, host: &str, port: u16) -> OrbResult<TelemetryClient> {
        let ior = Ior::new_iiop(ZC_TELEMETRY_REPO_ID, host, port, ZC_TELEMETRY_KEY);
        Ok(TelemetryClient {
            obj: orb.resolve_private(&ior)?,
        })
    }

    /// Wrap an already-resolved reference (e.g. from a shared connection).
    pub fn from_object(obj: ObjectRef) -> TelemetryClient {
        TelemetryClient { obj }
    }

    /// Liveness probe; returns the protocol constant `1`.
    pub fn ping(&self) -> OrbResult<u32> {
        self.obj.request("ping").idempotent().invoke()?.result()
    }

    /// The server's full telemetry snapshot as JSON lines.
    pub fn snapshot_json(&self) -> OrbResult<String> {
        self.obj
            .request("snapshot_json")
            .idempotent()
            .invoke()?
            .result()
    }

    /// The server's telemetry snapshot as an aligned text table.
    pub fn snapshot_text(&self) -> OrbResult<String> {
        self.obj
            .request("snapshot_text")
            .idempotent()
            .invoke()?
            .result()
    }

    /// Prometheus text exposition of the server's snapshot.
    pub fn prometheus(&self) -> OrbResult<String> {
        self.obj
            .request("prometheus")
            .idempotent()
            .invoke()?
            .result()
    }

    /// Up to `max` recent span timelines (server-clamped to
    /// [`MAX_TIMELINES`]).
    pub fn timelines(&self, max: u32) -> OrbResult<String> {
        self.obj
            .request("timelines")
            .arg(&max)?
            .idempotent()
            .invoke()?
            .result()
    }
}

impl std::fmt::Debug for TelemetryClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("TelemetryClient(_ZcTelemetry)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapter::dispatch_local;
    use zc_cdr::{ByteOrder, CdrEncoder};

    fn servant_with(tele: Arc<Telemetry>) -> crate::ObjectAdapter {
        let oa = crate::ObjectAdapter::new();
        oa.register_key(
            ZC_TELEMETRY_KEY,
            Arc::new(TelemetryServant::new(
                tele,
                CopyMeter::new_shared(),
                PagePool::default_for_orb(),
            )),
        );
        oa
    }

    #[test]
    fn snapshot_json_serves_sections() {
        let tele = Telemetry::with_capacity(64);
        tele.metrics().requests_received.incr();
        tele.note_request_received();
        let oa = servant_with(tele);
        let reply = dispatch_local(
            &oa,
            ZC_TELEMETRY_KEY,
            "snapshot_json",
            &[],
            ByteOrder::native(),
        )
        .unwrap();
        let mut dec = zc_cdr::CdrDecoder::new(&reply, ByteOrder::native());
        let text = <String as zc_cdr::CdrMarshal>::demarshal(&mut dec).unwrap();
        assert!(text.contains("\"section\":\"load\""), "{text}");
        assert!(
            text.contains("\"name\":\"requests_received\",\"value\":1"),
            "{text}"
        );
    }

    #[test]
    fn timelines_clamps_hostile_count() {
        let tele = Telemetry::with_capacity(64);
        let oa = servant_with(tele);
        let mut enc = CdrEncoder::new(ByteOrder::native());
        enc.write_u32(u32::MAX); // hostile: asks for 4 billion timelines
        let args = enc.finish_stream();
        let reply = dispatch_local(
            &oa,
            ZC_TELEMETRY_KEY,
            "timelines",
            &args,
            ByteOrder::native(),
        )
        .unwrap();
        let mut dec = zc_cdr::CdrDecoder::new(&reply, ByteOrder::native());
        let text = <String as zc_cdr::CdrMarshal>::demarshal(&mut dec).unwrap();
        // Bounded reply, not an OOM: the ring holds no spans yet.
        assert!(text.contains("no complete spans"), "{text}");
    }

    #[test]
    fn unknown_op_raises_bad_operation() {
        let tele = Telemetry::disabled();
        let oa = servant_with(tele);
        let err = dispatch_local(
            &oa,
            ZC_TELEMETRY_KEY,
            "drop_tables",
            &[],
            ByteOrder::native(),
        )
        .unwrap_err();
        match err {
            crate::OrbError::System(ex) => {
                assert_eq!(ex.kind, zc_giop::SystemExceptionKind::BadOperation)
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
