//! Data-parallel collectives over groups of objects.
//!
//! The paper situates itself against PARDIS/Cobra and the then-nascent
//! *Data Parallel CORBA* specification (§1.2, §2.1): CORBA extended with
//! data distribution across parallel objects. This module provides that
//! extension on zcorba's zero-copy substrate — and it composes beautifully
//! with it, because [`zc_buffers::ZcBytes::slice`] is O(1): **scattering a
//! large block to N workers performs no copies at all**; every worker's
//! part is a reference into the master's pages.
//!
//! Operations invoked through [`ParGroup::scatter`] receive the contract
//!
//! ```idl
//! PartOut op(in unsigned long part, in unsigned long parts,
//!            in unsigned long long offset, in sequence<ZC_Octet> data);
//! ```
//!
//! and may return any single CDR value (often another ZC sequence).

use zc_buffers::ZcBytes;
use zc_cdr::{CdrMarshal, ZcOctetSeq};

use crate::proxy::ObjectRef;
use crate::{OrbError, OrbResult};

/// A group of worker object references addressed collectively.
///
/// For true parallelism resolve each member over its own connection
/// (`Orb::resolve_private`): requests on a shared connection serialize.
pub struct ParGroup {
    members: Vec<ObjectRef>,
}

impl ParGroup {
    /// Form a group. Panics on an empty member list.
    pub fn new(members: Vec<ObjectRef>) -> ParGroup {
        assert!(!members.is_empty(), "a ParGroup needs at least one member");
        ParGroup { members }
    }

    /// Group size.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the group is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Split `data` into `len()` contiguous, nearly equal parts — O(1)
    /// slices of the same storage, no copies.
    pub fn partition(&self, data: &ZcBytes) -> Vec<(u64, ZcBytes)> {
        partition_into(data, self.members.len())
    }

    /// Scatter `data` across the group: worker *i* receives part *i* (by
    /// reference) via operation `op`, all invocations running
    /// concurrently. Returns each worker's result in member order.
    pub fn scatter<R>(&self, op: &str, data: &ZcBytes) -> OrbResult<Vec<R>>
    where
        R: CdrMarshal + Send + 'static,
    {
        let parts = self.partition(data);
        let total = self.members.len() as u32;
        std::thread::scope(|scope| {
            let mut joins = Vec::with_capacity(parts.len());
            for (i, ((offset, part), member)) in parts.into_iter().zip(&self.members).enumerate() {
                let op = op.to_string();
                joins.push(scope.spawn(move || -> OrbResult<R> {
                    member
                        .request(&op)
                        .arg(&(i as u32))?
                        .arg(&total)?
                        .arg(&offset)?
                        .arg(&ZcOctetSeq::from_zc(part))?
                        .invoke()?
                        .result()
                }));
            }
            joins
                .into_iter()
                .map(|j| {
                    j.join()
                        .map_err(|_| OrbError::Protocol("scatter worker panicked".into()))?
                })
                .collect()
        })
    }

    /// Scatter, then gather byte results back into one contiguous aligned
    /// buffer (in part order). The gather concatenation is the single copy
    /// of the operation — unavoidable when a contiguous result is
    /// requested — and is metered as application fill by the caller's
    /// meter if desired.
    pub fn scatter_gather(&self, op: &str, data: &ZcBytes) -> OrbResult<ZcBytes> {
        let parts: Vec<ZcOctetSeq> = self.scatter(op, data)?;
        let total: usize = parts.iter().map(|p| p.len()).sum();
        let mut out = zc_buffers::AlignedBuf::with_capacity(total);
        for p in &parts {
            out.extend_from_slice(p);
        }
        Ok(ZcBytes::from_aligned(out))
    }

    /// Broadcast the *same* block to every member (reference-counted, so
    /// still no copies on the way in), collecting each result.
    pub fn broadcast<R>(&self, op: &str, data: &ZcBytes) -> OrbResult<Vec<R>>
    where
        R: CdrMarshal + Send + 'static,
    {
        let total = self.members.len() as u32;
        std::thread::scope(|scope| {
            let mut joins = Vec::with_capacity(self.members.len());
            for (i, member) in self.members.iter().enumerate() {
                let op = op.to_string();
                let block = data.clone();
                joins.push(scope.spawn(move || -> OrbResult<R> {
                    member
                        .request(&op)
                        .arg(&(i as u32))?
                        .arg(&total)?
                        .arg(&0u64)?
                        .arg(&ZcOctetSeq::from_zc(block))?
                        .invoke()?
                        .result()
                }));
            }
            joins
                .into_iter()
                .map(|j| {
                    j.join()
                        .map_err(|_| OrbError::Protocol("broadcast worker panicked".into()))?
                })
                .collect()
        })
    }
}

/// Split a block into `n` contiguous `(offset, slice)` parts. Zero-copy:
/// every part shares `data`'s storage.
///
/// When the block is large enough, part boundaries are rounded to page
/// boundaries so that **every** part of a page-aligned block is itself
/// page-aligned — keeping each part eligible for direct deposit (the
/// simulated zero-copy driver, like the real one, can only land
/// page-aligned blocks in place). Small blocks fall back to a plain
/// near-equal split.
pub fn partition_into(data: &ZcBytes, n: usize) -> Vec<(u64, ZcBytes)> {
    assert!(n > 0);
    let len = data.len();
    let page = zc_buffers::PAGE_SIZE;
    let mut parts = Vec::with_capacity(n);
    if len >= n * page {
        // page-rounded boundaries: boundary_i = round_to_page(i * len / n)
        let mut off = 0usize;
        for i in 1..=n {
            let raw = i * len / n;
            let end = if i == n { len } else { raw / page * page };
            parts.push((off as u64, data.slice(off..end)));
            off = end;
        }
    } else {
        let base = len / n;
        let extra = len % n;
        let mut off = 0usize;
        for i in 0..n {
            let size = base + usize::from(i < extra);
            parts.push((off as u64, data.slice(off..off + size)));
            off += size;
        }
    }
    debug_assert_eq!(
        parts.iter().map(|(_, p)| p.len()).sum::<usize>(),
        len,
        "partition must cover exactly"
    );
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_covers_exactly_without_copies() {
        let data = ZcBytes::zeroed(10_007);
        for n in [1, 2, 3, 7, 64] {
            let parts = partition_into(&data, n);
            assert_eq!(parts.len(), n);
            let total: usize = parts.iter().map(|(_, p)| p.len()).sum();
            assert_eq!(total, data.len());
            // contiguity + shared storage
            let mut expect_off = 0u64;
            for (off, p) in &parts {
                assert_eq!(*off, expect_off);
                assert!(p.ptr_eq(&data));
                expect_off += p.len() as u64;
            }
        }
    }

    #[test]
    fn large_partitions_cut_on_page_boundaries() {
        let data = ZcBytes::zeroed((8 << 20) + 12_345);
        for n in [2, 3, 5, 8] {
            let parts = partition_into(&data, n);
            assert_eq!(parts.len(), n);
            let total: usize = parts.iter().map(|(_, p)| p.len()).sum();
            assert_eq!(total, data.len());
            for (off, p) in &parts {
                assert_eq!(*off as usize % zc_buffers::PAGE_SIZE, 0);
                assert!(p.is_page_aligned(), "every part stays deposit-eligible");
            }
            // near-even: each part within one page + len/n of the ideal
            let ideal = data.len() / n;
            for (_, p) in &parts {
                assert!(p.len().abs_diff(ideal) <= zc_buffers::PAGE_SIZE + data.len() % n);
            }
        }
    }

    #[test]
    fn small_partition_falls_back_to_even_split() {
        let data = ZcBytes::zeroed(100);
        let parts = partition_into(&data, 3);
        let sizes: Vec<usize> = parts.iter().map(|(_, p)| p.len()).collect();
        assert_eq!(sizes, vec![34, 33, 33]);
    }

    #[test]
    fn partition_more_parts_than_bytes() {
        let data = ZcBytes::zeroed(3);
        let parts = partition_into(&data, 8);
        assert_eq!(parts.len(), 8);
        let total: usize = parts.iter().map(|(_, p)| p.len()).sum();
        assert_eq!(total, 3);
    }
}
