//! Client-side recovery: retry policy, backoff, and the per-endpoint
//! circuit breaker.
//!
//! CORBA invocations carry **at-most-once** semantics, so the retry rules
//! are strict:
//!
//! * a request whose *send* failed was provably never dispatched — any
//!   operation may be retried on a replacement connection;
//! * a request that was sent but whose *reply* never came back may or may
//!   not have executed — only operations the caller marked
//!   [`idempotent`](crate::StaticRequest::idempotent) retry; everything
//!   else surfaces `COMM_FAILURE` with `completed = MAYBE`;
//! * a *timed-out* request never retries: the connection is poisoned (a
//!   stale reply may still arrive) and quarantined from the cache.
//!
//! The circuit breaker guards against retry storms: after
//! `breaker_threshold` consecutive failures to one endpoint, calls fail
//! fast with `TRANSIENT` until `breaker_cooldown` elapses, after which one
//! half-open trial is admitted.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::time::{Duration, Instant};

use parking_lot::Mutex;

/// When and how the ORB retries failed invocations.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts per invocation, including the first (1 = no retry).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per attempt.
    pub base_backoff: Duration,
    /// Ceiling on the exponential backoff.
    pub max_backoff: Duration,
    /// Fraction of the backoff randomized away (0.0–1.0). Jitter is
    /// derived from a hash of the endpoint and attempt number, so retry
    /// schedules are deterministic per call site but decorrelated between
    /// endpoints.
    pub jitter: f64,
    /// Consecutive failures to one endpoint that open its circuit breaker.
    pub breaker_threshold: u32,
    /// How long an open breaker rejects calls before admitting a
    /// half-open trial.
    pub breaker_cooldown: Duration,
    /// Sticky-primary re-probe: after this many consecutive successes on a
    /// backup profile of a replicated object group, the proxy attempts to
    /// fail back to the primary (profile 0). `0` disables fail-back.
    pub reprobe_interval: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(100),
            jitter: 0.5,
            breaker_threshold: 4,
            breaker_cooldown: Duration::from_millis(250),
            reprobe_interval: 16,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries and never opens the breaker.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            breaker_threshold: u32::MAX,
            ..RetryPolicy::default()
        }
    }

    /// Whether any retry is possible under this policy.
    pub fn retries_enabled(&self) -> bool {
        self.max_attempts > 1
    }

    /// Backoff before retry number `attempt` (1-based: the delay between
    /// the first failure and the second attempt is `backoff(1, ..)`).
    /// Exponential with a cap, minus up to `jitter` of itself, derived
    /// deterministically from `(salt, attempt)`.
    pub fn backoff(&self, attempt: u32, salt: u64) -> Duration {
        let exp = attempt.saturating_sub(1).min(16);
        let raw = self
            .base_backoff
            .saturating_mul(1u32 << exp)
            .min(self.max_backoff);
        let jitter = self.jitter.clamp(0.0, 1.0);
        if jitter == 0.0 || raw.is_zero() {
            return raw;
        }
        // Hash-based jitter: no RNG dependency on the data path, and a
        // given (endpoint, attempt) pair always waits the same time —
        // reproducible tests, decorrelated endpoints.
        let mut h = std::collections::hash_map::DefaultHasher::new();
        salt.hash(&mut h);
        attempt.hash(&mut h);
        let unit = (h.finish() % 1024) as f64 / 1024.0; // [0, 1)
        let scale = 1.0 - jitter * unit;
        Duration::from_nanos((raw.as_nanos() as f64 * scale) as u64)
    }
}

/// A stable jitter salt for an endpoint.
pub(crate) fn endpoint_salt(endpoint: &(String, u16)) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    endpoint.hash(&mut h);
    h.finish()
}

/// Breaker state for one endpoint.
#[derive(Debug, Default)]
struct EndpointHealth {
    /// Consecutive failed attempts since the last success.
    consecutive_failures: u32,
    /// While `Some`, the breaker is open and calls fail fast.
    open_until: Option<Instant>,
}

/// Per-endpoint failure tracking shared by every clone of an ORB.
#[derive(Debug, Default)]
pub(crate) struct HealthRegistry {
    map: Mutex<HashMap<(String, u16), EndpointHealth>>,
}

/// Outcome of recording a failure.
pub(crate) enum FailureVerdict {
    /// Breaker still closed; retrying is allowed.
    Closed,
    /// This failure opened the breaker (carries the consecutive-failure
    /// count, for telemetry).
    JustOpened(u32),
}

impl HealthRegistry {
    /// Fail fast when `endpoint`'s breaker is open. An elapsed cooldown
    /// admits one half-open trial: the breaker closes, but the failure
    /// count stays at the threshold so a single new failure re-opens it.
    /// `Ok(true)` reports that this call performed the open→half-open
    /// transition (so the caller can move the open-breaker gauge).
    pub(crate) fn check(&self, endpoint: &(String, u16)) -> Result<bool, Duration> {
        let mut map = self.map.lock();
        let Some(health) = map.get_mut(endpoint) else {
            return Ok(false);
        };
        if let Some(until) = health.open_until {
            let now = Instant::now();
            if now < until {
                return Err(until - now);
            }
            // Half-open: admit this attempt; leave the failure count one
            // below the threshold so one failure re-opens immediately.
            health.open_until = None;
            health.consecutive_failures = health.consecutive_failures.saturating_sub(1);
            return Ok(true);
        }
        Ok(false)
    }

    /// Record a failed attempt; opens the breaker at the threshold.
    pub(crate) fn on_failure(
        &self,
        endpoint: &(String, u16),
        policy: &RetryPolicy,
    ) -> FailureVerdict {
        let mut map = self.map.lock();
        // zc-audit: allow(cheap-clone) — endpoint key (host string + port) for the health map, not payload
        let health = map.entry(endpoint.clone()).or_default();
        health.consecutive_failures = health.consecutive_failures.saturating_add(1);
        if health.open_until.is_none() && health.consecutive_failures >= policy.breaker_threshold {
            health.open_until = Some(Instant::now() + policy.breaker_cooldown);
            FailureVerdict::JustOpened(health.consecutive_failures)
        } else {
            FailureVerdict::Closed
        }
    }

    /// Record a success: the endpoint is healthy again. Returns whether
    /// the breaker was open (so the caller can lower the open gauge).
    pub(crate) fn on_success(&self, endpoint: &(String, u16)) -> bool {
        let mut map = self.map.lock();
        if let Some(health) = map.get_mut(endpoint) {
            health.consecutive_failures = 0;
            health.open_until.take().is_some()
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ep() -> (String, u16) {
        ("sim".to_string(), 9)
    }

    #[test]
    fn backoff_is_exponential_capped_and_deterministic() {
        let p = RetryPolicy {
            jitter: 0.0,
            ..RetryPolicy::default()
        };
        assert_eq!(p.backoff(1, 0), Duration::from_millis(2));
        assert_eq!(p.backoff(2, 0), Duration::from_millis(4));
        assert_eq!(p.backoff(3, 0), Duration::from_millis(8));
        // capped
        assert_eq!(p.backoff(40, 0), p.max_backoff);
        // jitter shrinks but never below (1 - jitter) and is reproducible
        let pj = RetryPolicy::default();
        let a = pj.backoff(2, 7);
        let b = pj.backoff(2, 7);
        assert_eq!(a, b);
        assert!(a <= Duration::from_millis(4));
        assert!(a >= Duration::from_millis(2));
    }

    #[test]
    fn breaker_opens_at_threshold_and_half_opens_after_cooldown() {
        let p = RetryPolicy {
            breaker_threshold: 2,
            breaker_cooldown: Duration::from_millis(5),
            ..RetryPolicy::default()
        };
        let reg = HealthRegistry::default();
        assert!(reg.check(&ep()).is_ok());
        assert!(matches!(reg.on_failure(&ep(), &p), FailureVerdict::Closed));
        assert!(reg.check(&ep()).is_ok());
        assert!(matches!(
            reg.on_failure(&ep(), &p),
            FailureVerdict::JustOpened(2)
        ));
        // open: fail fast
        assert!(reg.check(&ep()).is_err());
        std::thread::sleep(Duration::from_millis(8));
        // half-open: one trial admitted …
        assert!(reg.check(&ep()).is_ok());
        // … and a single failure re-opens immediately
        assert!(matches!(
            reg.on_failure(&ep(), &p),
            FailureVerdict::JustOpened(2)
        ));
        assert!(reg.check(&ep()).is_err());
    }

    #[test]
    fn success_resets_the_breaker() {
        let p = RetryPolicy {
            breaker_threshold: 1,
            breaker_cooldown: Duration::from_secs(60),
            ..RetryPolicy::default()
        };
        let reg = HealthRegistry::default();
        assert!(matches!(
            reg.on_failure(&ep(), &p),
            FailureVerdict::JustOpened(1)
        ));
        assert!(reg.check(&ep()).is_err());
        assert!(reg.on_success(&ep()), "breaker was open");
        assert!(reg.check(&ep()).is_ok());
        // Idempotent: a second success reports no open breaker to close.
        assert!(!reg.on_success(&ep()));
    }

    #[test]
    fn transitions_are_reported_for_gauges() {
        let p = RetryPolicy {
            breaker_threshold: 1,
            breaker_cooldown: Duration::from_millis(3),
            ..RetryPolicy::default()
        };
        let reg = HealthRegistry::default();
        // Unknown endpoint: no transition.
        assert_eq!(reg.check(&ep()), Ok(false));
        assert!(matches!(
            reg.on_failure(&ep(), &p),
            FailureVerdict::JustOpened(1)
        ));
        std::thread::sleep(Duration::from_millis(6));
        // The half-open admit is the open→closed transition.
        assert_eq!(reg.check(&ep()), Ok(true));
        assert_eq!(reg.check(&ep()), Ok(false));
    }

    #[test]
    fn none_policy_disables_retry() {
        let p = RetryPolicy::none();
        assert!(!p.retries_enabled());
        assert_eq!(p.max_attempts, 1);
    }
}
