//! The object adapter: servant registry, dispatch, and the server-side
//! request view.
//!
//! Plays the role of MICO's method dispatcher plus a minimal POA: object
//! keys map to servants; an incoming GIOP Request is demarshaled lazily by
//! the servant's skeleton code through [`ServerRequest`].

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use zc_cdr::{CdrDecoder, CdrEncoder, CdrMarshal};
use zc_giop::{SystemException, SystemExceptionKind};

use crate::{OrbError, OrbResult};

/// A server-side object implementation.
///
/// `dispatch` is the skeleton entry point: it reads `in` parameters with
/// [`ServerRequest::arg`], performs the operation, and writes the result
/// with [`ServerRequest::result`] (or raises). Generated skeletons (zc-idlc)
/// produce exactly this shape; hand-written servants implement it directly.
pub trait Servant: Send + Sync {
    /// CORBA repository id of the most derived interface.
    fn repo_id(&self) -> &'static str;

    /// Handle one operation.
    fn dispatch(&self, op: &str, req: &mut ServerRequest<'_>) -> OrbResult<()>;
}

/// The server-side view of one in-flight request: demarshal arguments,
/// marshal the result (possibly with reply deposits), or raise an
/// exception.
pub struct ServerRequest<'a> {
    dec: CdrDecoder<'a>,
    enc: CdrEncoder,
    exception: Option<SystemException>,
    result_written: bool,
    /// Stage clocks for this request's server-side legs: demarshal time
    /// accumulates across `arg` calls, reply-marshal across `result`/`out`.
    span: zc_trace::RequestSpan,
}

impl<'a> ServerRequest<'a> {
    /// Construct around a positioned argument decoder and a reply encoder.
    /// Used by the connection layer; servants never build one.
    pub(crate) fn new(dec: CdrDecoder<'a>, enc: CdrEncoder) -> ServerRequest<'a> {
        ServerRequest {
            dec,
            enc,
            exception: None,
            result_written: false,
            span: zc_trace::RequestSpan::disabled(),
        }
    }

    /// Attach an enabled span (connection layer only).
    pub(crate) fn with_span(mut self, span: zc_trace::RequestSpan) -> ServerRequest<'a> {
        self.span = span;
        self
    }

    /// Demarshal the next `in` parameter.
    pub fn arg<T: CdrMarshal>(&mut self) -> OrbResult<T> {
        let t0 = self.span.begin();
        let v = T::demarshal(&mut self.dec);
        self.span.end(zc_trace::Stage::ServerDemarshal, t0);
        Ok(v?)
    }

    /// Marshal the operation result (call once; for multiple out-values use
    /// a struct or call [`ServerRequest::out`] repeatedly instead).
    pub fn result<T: CdrMarshal>(&mut self, v: &T) -> OrbResult<()> {
        self.result_written = true;
        let t0 = self.span.begin();
        let r = v.marshal(&mut self.enc);
        self.span.end(zc_trace::Stage::ServerReplyMarshal, t0);
        r?;
        Ok(())
    }

    /// Marshal an additional out-value after the result.
    pub fn out<T: CdrMarshal>(&mut self, v: &T) -> OrbResult<()> {
        self.result_written = true;
        let t0 = self.span.begin();
        let r = v.marshal(&mut self.enc);
        self.span.end(zc_trace::Stage::ServerReplyMarshal, t0);
        r?;
        Ok(())
    }

    /// Raise a system exception; any partial result is discarded by the
    /// connection layer.
    pub fn raise(&mut self, ex: SystemException) -> OrbResult<()> {
        self.exception = Some(ex);
        Ok(())
    }

    /// Convenience: raise `BAD_OPERATION` for an unknown operation name.
    pub fn bad_operation(&mut self, _op: &str) -> OrbResult<()> {
        self.raise(SystemException::new(SystemExceptionKind::BadOperation, 0))
    }

    /// Whether the reply deposit path is active (the servant may use it to
    /// decide between ZC and plain result types; usually it needn't care).
    pub fn zc_enabled(&self) -> bool {
        self.enc.zc_enabled()
    }

    pub(crate) fn finish(
        self,
    ) -> (
        CdrEncoder,
        Option<SystemException>,
        bool,
        zc_trace::RequestSpan,
    ) {
        (self.enc, self.exception, self.result_written, self.span)
    }
}

/// Thread-safe registry of object keys → servants.
#[derive(Default)]
pub struct ObjectAdapter {
    servants: RwLock<HashMap<Vec<u8>, Arc<dyn Servant>>>,
}

impl ObjectAdapter {
    /// Fresh, empty adapter.
    pub fn new() -> ObjectAdapter {
        ObjectAdapter::default()
    }

    /// Register a servant under a key. Replaces any previous registration
    /// (CORBA's POA would call this activation).
    pub fn register_key(&self, key: &[u8], servant: Arc<dyn Servant>) {
        // zc-audit: allow(control-plane) — object key owned by the registry, not payload
        self.servants.write().insert(key.to_vec(), servant);
    }

    /// Remove a registration; returns whether something was removed.
    pub fn deactivate(&self, key: &[u8]) -> bool {
        self.servants.write().remove(key).is_some()
    }

    /// Look up a servant.
    pub fn find(&self, key: &[u8]) -> Option<Arc<dyn Servant>> {
        self.servants.read().get(key).cloned()
    }

    /// Number of active servants.
    pub fn len(&self) -> usize {
        self.servants.read().len()
    }

    /// Whether no servants are registered.
    pub fn is_empty(&self) -> bool {
        self.servants.read().is_empty()
    }

    /// Dispatch one request to the servant owning `key`.
    pub fn dispatch(&self, key: &[u8], op: &str, req: &mut ServerRequest<'_>) -> OrbResult<()> {
        match self.find(key) {
            Some(servant) => servant.dispatch(op, req),
            None => {
                req.raise(SystemException::new(SystemExceptionKind::ObjectNotExist, 0))?;
                Ok(())
            }
        }
    }
}

/// String-key conveniences (object keys are arbitrary octets in CORBA, but
/// human-readable names make examples and tests pleasant).
pub trait ObjectAdapterExt {
    /// Register under a UTF-8 name.
    fn register(&self, name: &str, servant: Arc<dyn Servant>);
}

impl ObjectAdapterExt for ObjectAdapter {
    fn register(&self, name: &str, servant: Arc<dyn Servant>) {
        self.register_key(name.as_bytes(), servant);
    }
}

impl std::fmt::Debug for ObjectAdapter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ObjectAdapter({} servants)", self.len())
    }
}

/// Helper used by the connection layer and tests to run a dispatch against
/// raw body bytes without a live connection.
pub fn dispatch_local(
    adapter: &ObjectAdapter,
    key: &[u8],
    op: &str,
    args: &[u8],
    order: zc_cdr::ByteOrder,
) -> OrbResult<Vec<u8>> {
    let dec = CdrDecoder::new(args, order);
    let enc = CdrEncoder::new(order);
    let mut req = ServerRequest::new(dec, enc);
    adapter.dispatch(key, op, &mut req)?;
    let (enc, ex, _, _) = req.finish();
    match ex {
        Some(ex) => Err(OrbError::System(ex)),
        None => Ok(enc.finish_stream()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zc_cdr::ByteOrder;

    struct Adder;
    impl Servant for Adder {
        fn repo_id(&self) -> &'static str {
            "IDL:test/Adder:1.0"
        }
        fn dispatch(&self, op: &str, req: &mut ServerRequest<'_>) -> OrbResult<()> {
            match op {
                "add" => {
                    let a: i32 = req.arg()?;
                    let b: i32 = req.arg()?;
                    req.result(&(a + b))
                }
                other => req.bad_operation(other),
            }
        }
    }

    fn encode_args(f: impl FnOnce(&mut CdrEncoder)) -> Vec<u8> {
        let mut e = CdrEncoder::new(ByteOrder::native());
        f(&mut e);
        e.finish_stream()
    }

    #[test]
    fn register_find_dispatch() {
        let oa = ObjectAdapter::new();
        oa.register("adder", Arc::new(Adder));
        assert_eq!(oa.len(), 1);
        assert!(oa.find(b"adder").is_some());

        let args = encode_args(|e| {
            e.write_i32(20);
            e.write_i32(22);
        });
        let reply = dispatch_local(&oa, b"adder", "add", &args, ByteOrder::native()).unwrap();
        let mut dec = CdrDecoder::new(&reply, ByteOrder::native());
        assert_eq!(i32::demarshal(&mut dec).unwrap(), 42);
    }

    #[test]
    fn unknown_object_raises_object_not_exist() {
        let oa = ObjectAdapter::new();
        let err = dispatch_local(&oa, b"ghost", "op", &[], ByteOrder::native()).unwrap_err();
        match err {
            OrbError::System(ex) => {
                assert_eq!(ex.kind, SystemExceptionKind::ObjectNotExist)
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unknown_operation_raises_bad_operation() {
        let oa = ObjectAdapter::new();
        oa.register("adder", Arc::new(Adder));
        let err = dispatch_local(&oa, b"adder", "subtract", &[], ByteOrder::native()).unwrap_err();
        match err {
            OrbError::System(ex) => assert_eq!(ex.kind, SystemExceptionKind::BadOperation),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn deactivate_removes() {
        let oa = ObjectAdapter::new();
        oa.register("adder", Arc::new(Adder));
        assert!(oa.deactivate(b"adder"));
        assert!(!oa.deactivate(b"adder"));
        assert!(oa.is_empty());
    }

    #[test]
    fn malformed_args_error_cleanly() {
        let oa = ObjectAdapter::new();
        oa.register("adder", Arc::new(Adder));
        // only one arg instead of two
        let args = encode_args(|e| e.write_i32(1));
        let err = dispatch_local(&oa, b"adder", "add", &args, ByteOrder::native()).unwrap_err();
        assert!(matches!(err, OrbError::Cdr(_)));
    }

    #[test]
    fn replacement_registration_wins() {
        struct Fixed;
        impl Servant for Fixed {
            fn repo_id(&self) -> &'static str {
                "IDL:test/Fixed:1.0"
            }
            fn dispatch(&self, _op: &str, req: &mut ServerRequest<'_>) -> OrbResult<()> {
                req.result(&7i32)
            }
        }
        let oa = ObjectAdapter::new();
        oa.register("x", Arc::new(Adder));
        oa.register("x", Arc::new(Fixed));
        let reply = dispatch_local(&oa, b"x", "anything", &[], ByteOrder::native()).unwrap();
        let mut dec = CdrDecoder::new(&reply, ByteOrder::native());
        assert_eq!(i32::demarshal(&mut dec).unwrap(), 7);
    }
}
