//! The ORB runtime: configuration, client-side resolution, server loop.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::Mutex;

use zc_buffers::{CopyMeter, PagePool};
use zc_cdr::CdrDecoder;
use zc_giop::{Handshake, Ior, SystemException, SystemExceptionKind};
use zc_trace::{EventKind, OrbTelemetry, SpoolConfig, SpoolWriter, Telemetry, TraceLayer};
use zc_transport::{
    Acceptor, Connection, SimNetwork, TcpTransportListener, TransportCtx, TransportError,
};

use crate::adapter::{ObjectAdapter, ServerRequest};
use crate::admission::{AdmissionConfig, AdmissionControl, ShedReason};
use crate::conn::{ConnTuning, GiopConn};
use crate::proxy::ObjectRef;
use crate::retry::{FailureVerdict, HealthRegistry, RetryPolicy};
use crate::{OrbError, OrbResult};

/// Which transport an ORB instance uses.
#[derive(Clone)]
pub enum TransportSel {
    /// The in-process simulated network.
    Sim(SimNetwork),
    /// Real loopback TCP.
    Tcp,
}

/// ORB configuration (fixed at build time).
#[derive(Clone)]
pub struct OrbConfig {
    /// Offer the zero-copy deposit path during negotiation.
    pub zc_enabled: bool,
    /// Connection tuning (ablation switches).
    pub tuning: ConnTuning,
    /// Pretend to be a foreign architecture in handshakes — forces the
    /// conventional, fully-marshaled path (heterogeneity experiments).
    pub pretend_foreign: bool,
    /// Client-side retry/backoff/circuit-breaker policy.
    pub retry: RetryPolicy,
    /// Server-side admission budgets (default: unlimited — no shedding).
    pub admission: AdmissionConfig,
}

impl Default for OrbConfig {
    fn default() -> Self {
        OrbConfig {
            zc_enabled: true,
            tuning: ConnTuning::default(),
            pretend_foreign: false,
            retry: RetryPolicy::default(),
            admission: AdmissionConfig::default(),
        }
    }
}

/// A client connection shared by every ObjectRef resolved to one endpoint.
type SharedConn = Arc<Mutex<GiopConn>>;

struct OrbInner {
    ctx: TransportCtx,
    transport: TransportSel,
    config: OrbConfig,
    adapter: Arc<ObjectAdapter>,
    conn_cache: Mutex<HashMap<(String, u16), SharedConn>>,
    endpoint_health: HealthRegistry,
    admission: AdmissionControl,
    /// Background trace-spool writer, if configured: held so its final
    /// drain runs when the last ORB clone drops. Never read — the writer
    /// only needs to live exactly as long as the ORB.
    _spool: Option<SpoolWriter>,
}

/// The Object Request Broker. Cheap to clone; all clones share state.
#[derive(Clone)]
pub struct Orb {
    inner: Arc<OrbInner>,
}

impl Orb {
    /// Start building an ORB.
    pub fn builder() -> OrbBuilder {
        OrbBuilder::default()
    }

    /// The servant registry.
    pub fn adapter(&self) -> &ObjectAdapter {
        &self.inner.adapter
    }

    /// The copy meter shared by every layer of this ORB.
    pub fn meter(&self) -> Arc<CopyMeter> {
        Arc::clone(&self.inner.ctx.meter)
    }

    /// The deposit-buffer pool.
    pub fn pool(&self) -> PagePool {
        self.inner.ctx.pool.clone()
    }

    /// The ORB's configuration.
    pub fn config(&self) -> &OrbConfig {
        &self.inner.config
    }

    /// The ORB's telemetry handle (disabled unless installed via
    /// [`OrbBuilder::telemetry`]).
    pub fn telemetry(&self) -> Arc<Telemetry> {
        Arc::clone(&self.inner.ctx.telemetry)
    }

    /// One merged observability snapshot: flight-recorder state, copy
    /// meter, transport totals, pool statistics and ORB metrics.
    pub fn telemetry_snapshot(&self) -> OrbTelemetry {
        self.inner
            .ctx
            .telemetry
            .orb_snapshot(self.inner.ctx.meter.snapshot(), self.inner.ctx.pool.stats())
    }

    fn local_handshake(&self) -> Handshake {
        if self.inner.config.pretend_foreign {
            Handshake::foreign()
        } else {
            Handshake::local(self.inner.config.zc_enabled)
        }
    }

    fn dial(&self, host: &str, port: u16) -> OrbResult<Box<dyn Connection>> {
        match &self.inner.transport {
            TransportSel::Sim(net) => Ok(net.connect(port, self.inner.ctx.clone())?),
            TransportSel::Tcp => {
                let connector = zc_transport::TcpConnector {
                    ctx: self.inner.ctx.clone(),
                };
                Ok(zc_transport::Connector::connect(&connector, host, port)?)
            }
        }
    }

    fn establish(&self, host: &str, port: u16) -> OrbResult<GiopConn> {
        let conn = self.dial(host, port)?;
        GiopConn::client(
            conn,
            self.local_handshake(),
            self.inner.ctx.clone(),
            self.inner.config.tuning,
        )
    }

    /// The ORB's retry/breaker policy.
    pub fn retry_policy(&self) -> &RetryPolicy {
        &self.inner.config.retry
    }

    /// The server-side admission gate (diagnostics: budgets + in-flight).
    pub fn admission(&self) -> &AdmissionControl {
        &self.inner.admission
    }

    /// Fail fast with `TRANSIENT` while `endpoint`'s circuit breaker is
    /// open (an elapsed cooldown admits one half-open trial).
    pub(crate) fn breaker_check(&self, endpoint: &(String, u16)) -> OrbResult<()> {
        match self.inner.endpoint_health.check(endpoint) {
            Ok(half_open_admitted) => {
                if half_open_admitted {
                    // Open → half-open counts as closed for the gauge; a
                    // failed trial re-raises it via note_endpoint_failure.
                    self.inner.ctx.telemetry.note_breaker(false);
                }
                Ok(())
            }
            Err(_remaining) => Err(OrbError::System(SystemException {
                kind: SystemExceptionKind::Transient,
                minor: 1,
                completed: 1, // COMPLETED_NO: the call was never attempted
            })),
        }
    }

    /// Record a failed attempt against `endpoint`; opens the breaker (with
    /// a telemetry event) at the policy threshold.
    pub(crate) fn note_endpoint_failure(&self, endpoint: &(String, u16)) {
        if let FailureVerdict::JustOpened(failures) = self
            .inner
            .endpoint_health
            .on_failure(endpoint, &self.inner.config.retry)
        {
            let tele = &self.inner.ctx.telemetry;
            if tele.is_enabled() {
                tele.metrics().breaker_opens.incr();
            }
            tele.note_breaker(true);
            tele.record(
                TraceLayer::Orb,
                EventKind::BreakerOpen,
                0,
                0,
                failures as u64,
            );
        }
    }

    /// Record a successful call: `endpoint` is healthy, breaker resets.
    pub(crate) fn note_endpoint_success(&self, endpoint: &(String, u16)) {
        if self.inner.endpoint_health.on_success(endpoint) {
            self.inner.ctx.telemetry.note_breaker(false);
        }
    }

    /// Replace the connection inside `shared` with a freshly established
    /// one — the swap heals every `ObjectRef` clone sharing the `Arc` as
    /// well as the connection cache entry.
    pub(crate) fn reconnect_shared(
        &self,
        endpoint: &(String, u16),
        shared: &SharedConn,
        update_cache: bool,
    ) -> OrbResult<()> {
        self.breaker_check(endpoint)?;
        let fresh = match self.establish(&endpoint.0, endpoint.1) {
            Ok(c) => c,
            Err(e) => {
                self.note_endpoint_failure(endpoint);
                return Err(e);
            }
        };
        let conn_id = fresh.trace_conn_id();
        *shared.lock() = fresh;
        if update_cache {
            self.inner
                .conn_cache
                .lock()
                .insert(endpoint.clone(), Arc::clone(shared));
        }
        let tele = &self.inner.ctx.telemetry;
        if tele.is_enabled() {
            tele.metrics().reconnects.incr();
        }
        tele.record(TraceLayer::Orb, EventKind::Reconnect, conn_id, 0, conn_id);
        Ok(())
    }

    /// Drop `shared` from the connection cache (if it is still the cached
    /// entry for `endpoint`), so the next resolve dials fresh. Used after
    /// a reply timeout poisons the connection.
    pub(crate) fn quarantine(&self, endpoint: &(String, u16), shared: &SharedConn) {
        let mut cache = self.inner.conn_cache.lock();
        if let Some(cached) = cache.get(endpoint) {
            if Arc::ptr_eq(cached, shared) {
                cache.remove(endpoint);
            }
        }
    }

    /// Every dialable target of an IOR, in profile order (for a replicated
    /// object group: primary first, then the backups).
    fn group_targets(ior: &Ior) -> OrbResult<Vec<crate::proxy::Target>> {
        // At least one IIOP profile must exist (same error as before).
        ior.iiop_profile()?;
        Ok(ior
            .iiop_profiles()
            .map(|p| ((p.host.clone(), p.port), p.object_key.clone()))
            .collect())
    }

    /// Resolve an IOR to an object reference, reusing a cached connection
    /// to the same endpoint when one exists. Multi-profile IORs (replicated
    /// object groups) bind to the first live profile: profiles are tried in
    /// IOR order, skipping endpoints whose circuit breaker is open.
    pub fn resolve(&self, ior: &Ior) -> OrbResult<ObjectRef> {
        let targets = Self::group_targets(ior)?;
        let mut bound = None;
        let mut last_err = None;
        for (idx, (endpoint, _)) in targets.iter().enumerate() {
            let cached = self.inner.conn_cache.lock().get(endpoint).cloned();
            let conn = match cached {
                Some(c) => c,
                None => {
                    if let Err(e) = self.breaker_check(endpoint) {
                        last_err = Some(e);
                        continue;
                    }
                    match self.establish(&endpoint.0, endpoint.1) {
                        Ok(c) => {
                            let c = Arc::new(Mutex::new(c));
                            self.inner
                                .conn_cache
                                .lock()
                                .insert(endpoint.clone(), Arc::clone(&c));
                            c
                        }
                        Err(e) => {
                            self.note_endpoint_failure(endpoint);
                            last_err = Some(e);
                            continue;
                        }
                    }
                }
            };
            bound = Some((idx, conn));
            break;
        }
        match bound {
            Some((idx, conn)) => {
                Ok(ObjectRef::new(ior.clone(), conn)?.with_recovery(self.clone(), targets, idx))
            }
            None => Err(last_err.expect("group_targets guarantees at least one profile")),
        }
    }

    /// Resolve over a *fresh private* connection (needed for concurrent
    /// clients, since requests on one connection are serialized). Tries
    /// profiles in IOR order like [`Orb::resolve`].
    pub fn resolve_private(&self, ior: &Ior) -> OrbResult<ObjectRef> {
        let targets = Self::group_targets(ior)?;
        let mut bound = None;
        let mut last_err = None;
        for (idx, (endpoint, _)) in targets.iter().enumerate() {
            if let Err(e) = self.breaker_check(endpoint) {
                last_err = Some(e);
                continue;
            }
            match self.establish(&endpoint.0, endpoint.1) {
                Ok(c) => {
                    // Private references recover too, but their replacement
                    // connection is never inserted into the shared cache.
                    bound = Some((idx, Arc::new(Mutex::new(c))));
                    break;
                }
                Err(e) => {
                    self.note_endpoint_failure(endpoint);
                    last_err = Some(e);
                }
            }
        }
        match bound {
            Some((idx, conn)) => Ok(ObjectRef::new(ior.clone(), conn)?.with_recovery_private(
                self.clone(),
                targets,
                idx,
            )),
            None => Err(last_err.expect("group_targets guarantees at least one profile")),
        }
    }

    /// Resolve an `IOR:…` string.
    pub fn resolve_str(&self, ior: &str) -> OrbResult<ObjectRef> {
        self.resolve(&Ior::from_ior_string(ior)?)
    }

    /// Start serving registered objects on `port` (0 = ephemeral).
    pub fn serve(&self, port: u16) -> OrbResult<ServerHandle> {
        let (acceptor, host, port): (Box<dyn Acceptor>, String, u16) = match &self.inner.transport {
            TransportSel::Sim(net) => {
                let l = net.listen(port, self.inner.ctx.clone())?;
                let (h, p) = l.endpoint();
                (Box::new(l), h, p)
            }
            TransportSel::Tcp => {
                let l = TcpTransportListener::bind(port, self.inner.ctx.clone())?;
                let (h, p) = l.endpoint();
                (Box::new(l), h, p)
            }
        };
        let shutdown = Arc::new(AtomicBool::new(false));
        let orb = self.clone();
        let flag = Arc::clone(&shutdown);
        let acceptor_thread = std::thread::Builder::new()
            .name(format!("zcorba-accept-{port}"))
            .spawn(move || {
                while let Ok(conn) = acceptor.accept() {
                    if flag.load(Ordering::SeqCst) {
                        break;
                    }
                    let orb2 = orb.clone();
                    let _ = std::thread::Builder::new()
                        .name("zcorba-conn".to_string())
                        .spawn(move || orb2.run_connection(conn));
                }
            })
            .expect("spawn acceptor thread");
        Ok(ServerHandle {
            orb: self.clone(),
            host,
            port,
            shutdown,
            acceptor_thread: Some(acceptor_thread),
        })
    }

    /// Serve one accepted connection until it closes (the per-connection
    /// server loop: MICO's `GIOPConn::do_read` + dispatcher).
    fn run_connection(&self, conn: Box<dyn Connection>) {
        let mut gc = match GiopConn::server(
            conn,
            self.local_handshake(),
            self.inner.ctx.clone(),
            self.inner.config.tuning,
        ) {
            Ok(gc) => gc,
            Err(_) => return, // failed or garbled handshake: drop quietly
        };
        let tele = self.telemetry();
        let admission = self.inner.admission.clone();
        let conn_id = gc.trace_conn_id();
        loop {
            // Admission runs after the request header decodes but before
            // any deposit page is pinned: a shed costs one TRANSIENT
            // (completed = NO) reply. Control-plane objects (reserved
            // `_`-prefix keys, e.g. `_ZcTelemetry`) ride the reserved lane
            // so operators can still poll a saturated server. The ticket
            // holds the queue slot until the reply is sent (end of this
            // loop iteration).
            let (incoming, _ticket) = match gc.recv_request_admitted(|header, announced, bulk| {
                let control = crate::admission::is_control_plane_key(&header.object_key);
                admission.admit(control, announced, bulk).map_err(|reason| {
                    if tele.is_enabled() {
                        let m = tele.metrics();
                        m.sheds.incr();
                        if matches!(reason, ShedReason::Brownout) {
                            m.brownout_sheds.incr();
                        }
                    }
                    let kind = match reason {
                        ShedReason::QueueFull => {
                            tele.note_shed();
                            EventKind::Shed
                        }
                        ShedReason::Brownout => {
                            tele.note_shed();
                            tele.note_brownout_shed();
                            EventKind::Brownout
                        }
                    };
                    tele.record(TraceLayer::Orb, kind, conn_id, 0, announced);
                    reason.exception()
                })
            }) {
                Ok(r) => r,
                Err(OrbError::Transport(TransportError::Closed)) => break,
                Err(OrbError::Giop(zc_giop::GiopError::MessageTooLarge(_))) => {
                    // The announced size exceeded the hard cap: no huge
                    // allocation happened and there is no request id to
                    // attach a MARSHAL exception to — answer MessageError
                    // and drop the connection, per GIOP.
                    gc.send_message_error();
                    break;
                }
                Err(e) => {
                    // Unexpected teardown: dump the connection's recent
                    // flight-recorder events for post-mortem diagnosis.
                    if let Some(dump) = gc.post_mortem(16) {
                        eprintln!("zcorba: connection error: {e}\n{dump}");
                    }
                    break;
                }
            };
            let request_id = incoming.header.request_id;
            let response_expected = incoming.header.response_expected;
            let trace_id = incoming.trace_id;
            let dispatch_start = tele.is_enabled().then(std::time::Instant::now);
            // Load signals: arrival rate + in-flight gauge around dispatch.
            tele.note_request_received();
            tele.note_dispatch_begin();

            // Build the argument decoder over the received body, wired to
            // the deposited blocks when the connection is in ZC mode.
            let mut dec = CdrDecoder::new(&incoming.body, incoming.order).with_meter(self.meter());
            if incoming.zc {
                dec = dec.with_deposits(incoming.deposits);
            }
            let mut served_span = zc_trace::RequestSpan::disabled();
            let dispatch_outcome = dec
                .skip(incoming.args_offset)
                .map_err(OrbError::from)
                .and_then(|()| {
                    let enc = gc.body_encoder();
                    let mut sreq = ServerRequest::new(dec, enc).with_span(tele.request_span());
                    let r = self.inner.adapter.dispatch(
                        &incoming.header.object_key,
                        &incoming.header.operation,
                        &mut sreq,
                    );
                    let (enc, ex, _, span) = sreq.finish();
                    served_span = span;
                    r.map(|()| (enc, ex))
                });
            if let Some(start) = dispatch_start {
                let elapsed = start.elapsed().as_nanos() as u64;
                tele.metrics().dispatch_ns.record(elapsed);
                tele.record(
                    TraceLayer::Orb,
                    EventKind::Dispatch,
                    gc.trace_conn_id(),
                    trace_id,
                    elapsed,
                );
                // Servant time exclusive of the measured (de)marshal legs:
                // the three stages partition the dispatch window.
                let marshal_ns = served_span.get(zc_trace::Stage::ServerDemarshal)
                    + served_span.get(zc_trace::Stage::ServerReplyMarshal);
                served_span.add(
                    zc_trace::Stage::ServerDispatch,
                    elapsed.saturating_sub(marshal_ns),
                );
                served_span.commit(&tele, gc.trace_conn_id(), trace_id);
            }
            tele.note_dispatch_end();

            if !response_expected {
                continue;
            }
            let send_result = match dispatch_outcome {
                Ok((enc, None)) => gc.send_reply_ok(request_id, enc),
                Ok((_, Some(ex))) => gc.send_reply_exception(request_id, &ex),
                Err(OrbError::System(ex)) => gc.send_reply_exception(request_id, &ex),
                Err(OrbError::User(data)) => gc.send_reply_user(request_id, &data),
                Err(OrbError::Cdr(_)) => gc.send_reply_exception(
                    request_id,
                    &SystemException::new(SystemExceptionKind::Marshal, 1),
                ),
                Err(_) => gc.send_reply_exception(
                    request_id,
                    &SystemException::new(SystemExceptionKind::Internal, 1),
                ),
            };
            if send_result.is_err() {
                break;
            }
        }
        gc.send_close();
    }
}

impl std::fmt::Debug for Orb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Orb(zc: {}, servants: {})",
            self.inner.config.zc_enabled,
            self.inner.adapter.len()
        )
    }
}

/// Builder for [`Orb`].
#[derive(Default)]
pub struct OrbBuilder {
    transport: Option<TransportSel>,
    config: OrbConfig,
    meter: Option<Arc<CopyMeter>>,
    pool: Option<PagePool>,
    telemetry: Option<Arc<Telemetry>>,
    spool: Option<SpoolConfig>,
}

impl OrbBuilder {
    /// Use the in-process simulated network.
    pub fn sim(mut self, net: SimNetwork) -> Self {
        self.transport = Some(TransportSel::Sim(net));
        self
    }

    /// Use real loopback TCP.
    pub fn tcp(mut self) -> Self {
        self.transport = Some(TransportSel::Tcp);
        self
    }

    /// Offer (or refuse) the zero-copy deposit path in negotiation.
    pub fn zc(mut self, enabled: bool) -> Self {
        self.config.zc_enabled = enabled;
        self
    }

    /// Account copies on a supplied meter (e.g. shared between the client
    /// and server ORBs of an experiment).
    pub fn meter(mut self, meter: Arc<CopyMeter>) -> Self {
        self.meter = Some(meter);
        self
    }

    /// Use a specific deposit-buffer pool.
    pub fn pool(mut self, pool: PagePool) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Install a telemetry handle (flight recorder + metrics). Share one
    /// handle between the client and server ORBs of an experiment to get a
    /// single merged event stream. Omitted: telemetry is disabled and the
    /// data path pays one boolean check per would-be event.
    pub fn telemetry(mut self, telemetry: Arc<Telemetry>) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// Spool the flight recorder to durable, rotating segment files (see
    /// `zc_trace::SpoolConfig`). Requires an enabled telemetry handle to
    /// have anything to drain; the writer runs on its own thread and the
    /// data path is untouched — when no spool is configured, not one
    /// instruction is added. The writer's final drain runs when the last
    /// clone of the built ORB drops.
    pub fn trace_spool(mut self, config: SpoolConfig) -> Self {
        self.spool = Some(config);
        self
    }

    /// Ablation A4: disable out-of-band deposits (marshal bypass only).
    pub fn deposit_enabled(mut self, enabled: bool) -> Self {
        self.config.tuning.deposit_enabled = enabled;
        self
    }

    /// Ablation A1: couple data back into the control messages.
    pub fn separate_data(mut self, separate: bool) -> Self {
        self.config.tuning.separate_data = separate;
        self
    }

    /// Replace the whole connection tuning (degradation windows, probe
    /// cadence, ablation switches) in one call.
    pub fn tuning(mut self, tuning: ConnTuning) -> Self {
        self.config.tuning = tuning;
        self
    }

    /// Pretend to be a foreign architecture (forces conventional IIOP).
    pub fn pretend_foreign(mut self, foreign: bool) -> Self {
        self.config.pretend_foreign = foreign;
        self
    }

    /// Install a client-side retry/breaker policy (default:
    /// [`RetryPolicy::default`] — up to 3 attempts with exponential
    /// backoff; use [`RetryPolicy::none`] to disable recovery).
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.config.retry = policy;
        self
    }

    /// Install server-side admission budgets (default:
    /// [`AdmissionConfig::default`] — unlimited, never sheds; use
    /// [`AdmissionConfig::bounded`] for a bounded dispatch queue with
    /// brownout watermarks and a reserved control-plane lane).
    pub fn admission(mut self, config: AdmissionConfig) -> Self {
        self.config.admission = config;
        self
    }

    /// Build the ORB.
    ///
    /// # Panics
    /// If no transport was selected.
    pub fn build(self) -> Orb {
        let transport = self
            .transport
            .expect("OrbBuilder: select .sim(net) or .tcp()");
        let meter = self.meter.unwrap_or_else(CopyMeter::new_shared);
        let pool = self.pool.unwrap_or_else(PagePool::default_for_orb);
        let telemetry = self.telemetry.unwrap_or_else(Telemetry::disabled);
        let adapter = Arc::new(ObjectAdapter::new());
        // Every ORB serves the in-band introspection plane: the reserved
        // `_ZcTelemetry` object answers snapshot/exposition polls over
        // plain GIOP even when the caller never registered a servant. It
        // serves meter/pool accounting (tracked unconditionally) with a
        // disabled-telemetry handle too, so it is registered regardless.
        adapter.register_key(
            zc_cdr::wire::ZC_TELEMETRY_KEY,
            Arc::new(crate::introspect::TelemetryServant::new(
                Arc::clone(&telemetry),
                Arc::clone(&meter),
                pool.clone(),
            )),
        );
        let admission = AdmissionControl::new(self.config.admission);
        let spool = self.spool.and_then(|config| {
            match SpoolWriter::spawn(Arc::clone(&telemetry), config) {
                Ok(w) => Some(w),
                Err(e) => {
                    // Observability must never take the ORB down: a spool
                    // directory that cannot be created degrades to no spool.
                    eprintln!("zcorba: trace spool disabled: {e}");
                    None
                }
            }
        });
        Orb {
            inner: Arc::new(OrbInner {
                ctx: TransportCtx {
                    meter,
                    pool,
                    telemetry,
                },
                transport,
                config: self.config,
                adapter,
                conn_cache: Mutex::new(HashMap::new()),
                endpoint_health: HealthRegistry::default(),
                admission,
                _spool: spool,
            }),
        }
    }
}

/// A running server: endpoint information and lifecycle control.
pub struct ServerHandle {
    orb: Orb,
    host: String,
    port: u16,
    shutdown: Arc<AtomicBool>,
    acceptor_thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// Host peers should dial.
    pub fn host(&self) -> &str {
        &self.host
    }

    /// Port peers should dial.
    pub fn port(&self) -> u16 {
        self.port
    }

    /// Produce an IOR for an object registered under `key`.
    /// Returns an error if nothing is registered under that key.
    pub fn ior_for(&self, key: &str, type_id: &str) -> OrbResult<Ior> {
        if self.orb.adapter().find(key.as_bytes()).is_none() {
            return Err(OrbError::Unresolvable(format!(
                "no servant registered under key {key:?}"
            )));
        }
        Ok(Ior::new_iiop(
            type_id,
            &self.host,
            self.port,
            key.as_bytes(),
        ))
    }

    /// Stop accepting new connections and join the acceptor thread.
    /// Existing connections drain naturally as clients disconnect.
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    fn shutdown_impl(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the blocking accept with a throwaway connection.
        let _ = self.orb.dial(&self.host.clone(), self.port);
        if let Some(h) = self.acceptor_thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ServerHandle({}:{})", self.host, self.port)
    }
}
