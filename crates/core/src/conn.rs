//! The GIOP connection: framing, negotiation, and the direct-deposit
//! sender/receiver of §4.4/§4.5.
//!
//! One [`GiopConn`] wraps one transport [`Connection`]. Immediately after
//! transport establishment both ends exchange a [`Handshake`]; the computed
//! [`Negotiated`] mode is fixed for the connection's lifetime:
//!
//! * **ZC mode** — `ZcOctetSeq` parameters marshal as 8-byte descriptors;
//!   their blocks are listed in a deposit-manifest service context on the
//!   Request/Reply (the control transfer) and shipped on the transport's
//!   data path (the data transfer). The receiver reads the manifest first,
//!   then pulls each announced block — on a zero-copy transport the block
//!   lands without a single payload copy.
//! * **plain mode** — everything marshals inline; the wire is ordinary
//!   IIOP, interoperable with any CORBA peer.
//!
//! The two ablation switches reproduce the paper's design arguments:
//! `deposit_enabled = false` keeps the marshal *bypass* (no type
//! conversion) but copies payload inline — "moving copies between layers";
//! `separate_data = false` keeps descriptors but embeds the blocks in the
//! control message — coupling synchronization and data again, which
//! re-introduces buffering copies at both ends.

use zc_buffers::ZcBytes;
use zc_cdr::{ByteOrder, CdrDecoder, CdrEncoder};
use zc_giop::{
    fragment_frames, DepositManifest, GiopHeader, GiopVersion, Handshake, MessageType, Negotiated,
    ReplyHeader, ReplyStatus, RequestHeader, SystemException, TraceContext, ZcHealthContext,
    GIOP_HEADER_LEN,
};
use zc_trace::{EventKind, TraceLayer};
use zc_transport::{Connection, TransportCtx, TransportError};

/// GIOP bodies above this size are split into `Fragment` continuations.
/// Oversized control messages arise only on the coupled-data ablation or
/// with very large marshaled-inline payloads; fragmentation keeps every
/// single control frame bounded, as GIOP 1.2 intends.
pub const FRAGMENT_THRESHOLD: usize = 4 << 20;

use crate::{OrbError, OrbResult};

/// Tuning switches for a connection (ablations A1/A4; defaults are the
/// paper's full design).
#[derive(Debug, Clone, Copy)]
pub struct ConnTuning {
    /// Use out-of-band deposits for `ZcOctetSeq` (when negotiated). When
    /// `false`, ZC types fall back to inline marshaling even on homogeneous
    /// connections — the "marshaling bypass only" configuration.
    pub deposit_enabled: bool,
    /// Ship deposit blocks on the separated data path. When `false`, blocks
    /// are embedded in the control message (coupled synchronization + data),
    /// which forces buffering copies at both ends.
    pub separate_data: bool,
    /// Peer-reported speculation samples to accumulate before judging the
    /// connection's zero-copy health (one tumbling window).
    pub degrade_window: u64,
    /// Miss rate within a window at or above which the send path degrades
    /// from zero-copy descriptors to inline marshaling.
    pub degrade_threshold: f64,
    /// While degraded, every Nth outgoing message is a zero-copy *probe*;
    /// a probe whose deposits land cleanly re-upgrades the connection.
    pub probe_interval: u64,
}

impl Default for ConnTuning {
    fn default() -> Self {
        ConnTuning {
            deposit_enabled: true,
            separate_data: true,
            degrade_window: 8,
            degrade_threshold: 0.5,
            probe_interval: 16,
        }
    }
}

/// Per-connection ZC→copy degradation state, driven by the peer's
/// [`ZcHealthContext`] reports (its cumulative receive-side speculation
/// counters). The *deposit sender* owns this machine: only the receiver
/// knows whether speculative deposits actually land in place, so the
/// sender degrades on the receiver's say-so.
///
/// States: **healthy** (descriptors + deposits) → when the windowed miss
/// rate crosses `degrade_threshold`: **degraded** (inline marshaling —
/// slower but immune to speculation) → every `probe_interval` messages one
/// zero-copy **probe**; a probe answered with hits and no misses returns
/// the connection to healthy.
#[derive(Debug, Default)]
struct DegradeState {
    /// Peer's cumulative counters at the last report (for deltas).
    peer_hits: u64,
    peer_misses: u64,
    /// Current tumbling window.
    window_hits: u64,
    window_misses: u64,
    /// Whether the send path is currently degraded to inline marshaling.
    degraded: bool,
    /// Messages sent since the last probe while degraded.
    msgs_since_probe: u64,
    /// Probes sent while degraded (payload of the Upgrade event).
    probes: u64,
    /// Whether the most recent `zc_send_active` decision was a degraded
    /// connection's zero-copy probe (consumed by [`GiopConn::take_last_probe`]
    /// to tag the attempt's journey cause).
    last_was_probe: bool,
}

/// An incoming request as surfaced to the server loop.
#[derive(Debug)]
pub struct IncomingRequest {
    /// Parsed request header.
    pub header: RequestHeader,
    /// The full GIOP body (header + padding + arguments).
    pub body: Vec<u8>,
    /// Offset of the first argument within `body`.
    pub args_offset: usize,
    /// Deposited blocks, in descriptor-index order.
    pub deposits: Vec<ZcBytes>,
    /// Byte order of the body.
    pub order: ByteOrder,
    /// Whether descriptors (not inline bytes) encode ZC sequences.
    pub zc: bool,
    /// Trace id propagated by the caller's `ZC_TRACE` service context
    /// (`0` when the caller sent none, or sent one we could not parse).
    pub trace_id: u64,
}

/// An incoming successful reply as surfaced to the client.
#[derive(Debug)]
pub struct IncomingReply {
    /// The full GIOP body (header + padding + results).
    pub body: Vec<u8>,
    /// Offset of the first result value within `body`.
    pub results_offset: usize,
    /// Deposited blocks, in descriptor-index order.
    pub deposits: Vec<ZcBytes>,
    /// Byte order of the body.
    pub order: ByteOrder,
    /// Whether descriptors encode ZC sequences.
    pub zc: bool,
}

/// A negotiated GIOP connection over any transport.
pub struct GiopConn {
    conn: Box<dyn Connection>,
    negotiated: Negotiated,
    ctx: TransportCtx,
    tuning: ConnTuning,
    next_request_id: u32,
    version: GiopVersion,
    /// Set when a reply timed out: the stream may now hold a stale reply,
    /// so the connection is unusable (CORBA closes such connections; so do
    /// we, on drop).
    poisoned: bool,
    /// Transport-allocated identifier correlating this connection's trace
    /// events (`0` when the transport does not participate).
    conn_id: u64,
    /// Trace id of the request currently in flight on this connection
    /// (outbound: the one we stamped; inbound: the one the peer sent).
    last_trace_id: u64,
    /// Journey annotation for the *next* outbound request, set by the proxy
    /// via [`GiopConn::set_journey`]: `(journey_id, attempt, cause)`.
    /// Consumed by `send_request_raw`, which stamps it into the `ZC_TRACE`
    /// context and records the attempt event.
    pending_journey: Option<(u64, u32, u8)>,
    /// Zero-copy send-path health (graceful degradation).
    degrade: DegradeState,
}

impl GiopConn {
    /// Client-side establishment: send our handshake, read the peer's.
    pub fn client(
        mut conn: Box<dyn Connection>,
        local: Handshake,
        ctx: TransportCtx,
        tuning: ConnTuning,
    ) -> OrbResult<GiopConn> {
        conn.send_control(&local.encode())?;
        let remote_bytes = conn.recv_control()?;
        let remote = Handshake::decode(&remote_bytes)?;
        let negotiated = Handshake::negotiate(&local, &remote);
        let conn_id = conn.trace_conn_id();
        ctx.telemetry.note_conn_open();
        Ok(GiopConn {
            conn,
            negotiated,
            ctx,
            tuning,
            next_request_id: 1,
            version: GiopVersion::V1_2,
            poisoned: false,
            conn_id,
            last_trace_id: 0,
            pending_journey: None,
            degrade: DegradeState::default(),
        })
    }

    /// Server-side establishment: read the client's handshake, answer.
    pub fn server(
        mut conn: Box<dyn Connection>,
        local: Handshake,
        ctx: TransportCtx,
        tuning: ConnTuning,
    ) -> OrbResult<GiopConn> {
        let remote_bytes = conn.recv_control()?;
        let remote = Handshake::decode(&remote_bytes)?;
        conn.send_control(&local.encode())?;
        // Client is the `client` argument of negotiate on both sides.
        let negotiated = Handshake::negotiate(&remote, &local);
        let conn_id = conn.trace_conn_id();
        ctx.telemetry.note_conn_open();
        Ok(GiopConn {
            conn,
            negotiated,
            ctx,
            tuning,
            next_request_id: 1,
            version: GiopVersion::V1_2,
            poisoned: false,
            conn_id,
            last_trace_id: 0,
            pending_journey: None,
            degrade: DegradeState::default(),
        })
    }

    /// The negotiated connection mode.
    pub fn negotiated(&self) -> Negotiated {
        self.negotiated
    }

    /// Whether `ZcOctetSeq` *can* take the deposit path on this connection
    /// (negotiation + tuning; ignores transient degradation).
    pub fn zc_active(&self) -> bool {
        self.negotiated.zero_copy && self.tuning.deposit_enabled
    }

    /// Whether the send path is currently degraded to inline marshaling.
    pub fn is_degraded(&self) -> bool {
        self.degrade.degraded
    }

    /// Decide the zero-copy flag for the *next* outgoing message. Healthy
    /// connections always use descriptors; degraded ones marshal inline,
    /// except for the periodic probe that tests whether the peer's
    /// speculation has recovered.
    fn zc_send_active(&mut self) -> bool {
        self.degrade.last_was_probe = false;
        if !self.zc_active() {
            return false;
        }
        if !self.degrade.degraded {
            return true;
        }
        self.degrade.msgs_since_probe += 1;
        if self.degrade.msgs_since_probe >= self.tuning.probe_interval.max(1) {
            self.degrade.msgs_since_probe = 0;
            self.degrade.probes += 1;
            self.degrade.last_was_probe = true;
            true
        } else {
            false
        }
    }

    /// Whether the most recent [`GiopConn::body_encoder`] call scheduled a
    /// degraded connection's zero-copy probe. Consumed (reset on read): the
    /// proxy tags that attempt's journey cause as `degrade-probe`.
    pub fn take_last_probe(&mut self) -> bool {
        std::mem::take(&mut self.degrade.last_was_probe)
    }

    /// Our receive-side speculation counters, piggybacked for the peer's
    /// degradation decision (only meaningful on zero-copy connections).
    fn zc_health_context(&self) -> Option<zc_giop::ServiceContext> {
        if !self.negotiated.zero_copy {
            return None;
        }
        let st = self.conn.stats();
        Some(
            ZcHealthContext {
                spec_hits: st.spec_hits,
                spec_misses: st.spec_misses,
            }
            .to_context(),
        )
    }

    /// Digest a peer health report: compute the delta since the last one
    /// and drive the degrade/probe/upgrade state machine.
    fn note_peer_health(&mut self, h: ZcHealthContext) {
        if !self.zc_active() {
            return;
        }
        let dh = h.spec_hits.saturating_sub(self.degrade.peer_hits);
        let dm = h.spec_misses.saturating_sub(self.degrade.peer_misses);
        self.degrade.peer_hits = h.spec_hits;
        self.degrade.peer_misses = h.spec_misses;
        if dh == 0 && dm == 0 {
            // Nothing speculated since the last report (e.g. we are
            // degraded and sent no deposits): no new evidence.
            return;
        }
        if self.degrade.degraded {
            if dm == 0 {
                // A probe's deposits landed cleanly: re-upgrade.
                self.degrade.degraded = false;
                self.degrade.window_hits = 0;
                self.degrade.window_misses = 0;
                let tele = &self.ctx.telemetry;
                if tele.is_enabled() {
                    tele.metrics().upgrades.incr();
                }
                tele.note_degraded(false);
                tele.record(
                    TraceLayer::Giop,
                    EventKind::Upgrade,
                    self.conn_id,
                    self.last_trace_id,
                    self.degrade.probes,
                );
                self.degrade.probes = 0;
            }
            return;
        }
        self.degrade.window_hits += dh;
        self.degrade.window_misses += dm;
        let total = self.degrade.window_hits + self.degrade.window_misses;
        if total >= self.tuning.degrade_window.max(1) {
            let miss_rate = self.degrade.window_misses as f64 / total as f64;
            if miss_rate >= self.tuning.degrade_threshold {
                self.degrade.degraded = true;
                self.degrade.msgs_since_probe = 0;
                self.degrade.probes = 0;
                let tele = &self.ctx.telemetry;
                if tele.is_enabled() {
                    tele.metrics().degradations.incr();
                }
                tele.note_degraded(true);
                tele.record(
                    TraceLayer::Giop,
                    EventKind::Degrade,
                    self.conn_id,
                    self.last_trace_id,
                    self.degrade.window_misses,
                );
            }
            self.degrade.window_hits = 0;
            self.degrade.window_misses = 0;
        }
    }

    /// Scan a service-context list for a peer health report and feed it to
    /// the degradation state machine. Malformed reports are ignored, like
    /// malformed trace contexts: health is advisory and must never fail a
    /// message.
    fn note_peer_health_in(&mut self, contexts: &[zc_giop::ServiceContext]) {
        if let Ok(Some(h)) = ZcHealthContext::find_in(contexts) {
            self.note_peer_health(h);
        }
    }

    /// Byte order of all GIOP messages on this connection.
    pub fn wire_order(&self) -> ByteOrder {
        self.negotiated.wire_order
    }

    /// The connection's copy meter.
    pub fn meter(&self) -> std::sync::Arc<zc_buffers::CopyMeter> {
        std::sync::Arc::clone(&self.ctx.meter)
    }

    /// Transport statistics.
    pub fn transport_stats(&self) -> zc_transport::ConnStats {
        self.conn.stats()
    }

    /// Peer description.
    pub fn peer(&self) -> String {
        self.conn.peer()
    }

    /// Transport-allocated trace correlation id for this connection.
    pub fn trace_conn_id(&self) -> u64 {
        self.conn_id
    }

    /// The connection's telemetry handle.
    pub fn telemetry(&self) -> &std::sync::Arc<zc_trace::Telemetry> {
        &self.ctx.telemetry
    }

    /// Trace id of the request most recently sent or received on this
    /// connection (`0` before the first traced exchange).
    pub fn last_trace_id(&self) -> u64 {
        self.last_trace_id
    }

    /// Annotate the *next* outbound request with its journey coordinates:
    /// the logical-request id, the attempt ordinal (0-based) and the cause
    /// that produced this attempt (a [`zc_trace::JourneyCause`] as its wire
    /// byte). Consumed by the next `send_request_raw`, which carries the
    /// triple in the `ZC_TRACE` context and records the attempt event.
    pub fn set_journey(&mut self, journey_id: u64, attempt: u32, cause: u8) {
        self.pending_journey = Some((journey_id, attempt, cause));
    }

    /// Render the last `n` flight-recorder events touching this connection
    /// (`None` when telemetry is disabled).
    pub fn post_mortem(&self, n: usize) -> Option<String> {
        self.ctx.telemetry.post_mortem(self.conn_id, n)
    }

    /// An argument/result encoder configured for this connection (meter,
    /// byte order, ZC mode). Takes `&mut self` because the degradation
    /// state machine decides per message whether this encoder uses
    /// descriptors or marshals inline (and counts probe scheduling).
    pub fn body_encoder(&mut self) -> CdrEncoder {
        let zc = self.zc_send_active();
        CdrEncoder::new(self.wire_order())
            .with_meter(std::sync::Arc::clone(&self.ctx.meter))
            .with_zc(zc)
    }

    fn alloc_request_id(&mut self) -> u32 {
        let id = self.next_request_id;
        self.next_request_id = self.next_request_id.wrapping_add(1);
        id
    }

    /// Assemble and send a GIOP message whose body is `header_enc` followed
    /// by 8-aligned `payload_bytes`, with `deposits` travelling per tuning.
    fn send_message(
        &mut self,
        msg_type: MessageType,
        mut header_enc: CdrEncoder,
        payload: &[u8],
        deposits: Vec<ZcBytes>,
    ) -> OrbResult<()> {
        if self.tuning.separate_data || deposits.is_empty() {
            header_enc.align(8);
            header_enc.write_raw(payload);
            let body = header_enc.finish_stream();
            self.send_framed(msg_type, &body)?;
            let mut sent = body.len() as u64;
            // Data transfer, decoupled: blocks follow on the data path,
            // already announced by the manifest in the control message.
            for block in &deposits {
                self.conn.send_data(block)?;
                sent += block.len() as u64;
                if self.ctx.telemetry.is_enabled() {
                    self.ctx
                        .telemetry
                        .metrics()
                        .deposit_block_bytes
                        .record(block.len() as u64);
                }
                self.ctx.telemetry.record(
                    TraceLayer::Giop,
                    EventKind::DepositSent,
                    self.conn_id,
                    self.last_trace_id,
                    block.len() as u64,
                );
            }
            // One window tick per message (not per frame): the tx rate
            // signal costs a clock read, which is too hot for the MTU loop.
            self.ctx.telemetry.note_wire_tx(sent);
        } else {
            // Ablation A1: couple data back into the control message.
            // Blocks are *copied* inline (metered as marshal: this is the
            // buffering the separation avoids), before the argument bytes.
            for block in &deposits {
                if self.ctx.telemetry.is_enabled() {
                    self.ctx
                        .telemetry
                        .metrics()
                        .deposit_block_bytes
                        .record(block.len() as u64);
                }
                header_enc.align(8);
                let bytes = block.as_slice();
                header_enc.write_u32(bytes.len() as u32);
                // metered bulk copy into the control buffer
                let mut tmp = vec![0u8; bytes.len()];
                self.ctx
                    .meter
                    .copy(zc_buffers::CopyLayer::Marshal, &mut tmp, bytes);
                header_enc.write_raw(&tmp);
            }
            header_enc.align(8);
            header_enc.write_raw(payload);
            let body = header_enc.finish_stream();
            self.send_framed(msg_type, &body)?;
            self.ctx.telemetry.note_wire_tx(body.len() as u64);
        }
        Ok(())
    }

    /// Frame (and if necessary fragment) a GIOP body onto the control path.
    fn send_framed(&mut self, msg_type: MessageType, body: &[u8]) -> OrbResult<()> {
        for frame in fragment_frames(
            self.version,
            self.wire_order(),
            msg_type,
            body,
            FRAGMENT_THRESHOLD,
        ) {
            self.conn.send_control(&frame)?;
        }
        Ok(())
    }

    /// Receive one GIOP message, reassembling `Fragment` continuations;
    /// returns `(type, body, order)`.
    fn recv_message(&mut self) -> OrbResult<(MessageType, Vec<u8>, ByteOrder)> {
        let (hdr, mut body) = self.recv_one_frame()?;
        let msg_type = hdr.msg_type;
        let order = hdr.flags.order;
        let mut more = hdr.flags.more_fragments;
        while more {
            let (cont_hdr, cont_body) = self.recv_one_frame()?;
            if cont_hdr.msg_type != MessageType::Fragment {
                // zc-audit: allow(control-plane) — protocol error diagnostic
                return Err(OrbError::Protocol(format!(
                    "expected Fragment continuation, got {:?}",
                    cont_hdr.msg_type
                )));
            }
            // zc-audit: allow(copy) — control-path fragment reassembly; models the KernelDefrag layer
            body.extend_from_slice(&cont_body);
            more = cont_hdr.flags.more_fragments;
        }
        // Watermark: peak bytes a fragment train held in reassembly. The
        // body only grows, so one post-loop sample sees the same peak as a
        // per-fragment sample would — at message, not MTU, granularity.
        self.ctx.telemetry.note_reassembly_bytes(body.len() as u64);
        // One rx window tick per reassembled message; deposit blocks tick
        // separately in `collect_deposits` when they arrive on the data path.
        self.ctx.telemetry.note_wire_rx(body.len() as u64);
        Ok((msg_type, body, order))
    }

    /// Receive exactly one GIOP frame from the control path.
    fn recv_one_frame(&mut self) -> OrbResult<(GiopHeader, Vec<u8>)> {
        let raw = self.conn.recv_control()?;
        if raw.len() < GIOP_HEADER_LEN {
            // zc-audit: allow(control-plane) — protocol error diagnostic
            return Err(OrbError::Protocol(format!(
                "short GIOP frame ({} bytes)",
                raw.len()
            )));
        }
        let hdr_bytes: [u8; GIOP_HEADER_LEN] = raw[..GIOP_HEADER_LEN].try_into().expect("checked");
        let hdr = GiopHeader::decode(&hdr_bytes)?;
        if raw.len() != GIOP_HEADER_LEN + hdr.msg_size as usize {
            // zc-audit: allow(control-plane) — protocol error diagnostic
            return Err(OrbError::Protocol(format!(
                "GIOP size mismatch: header says {}, frame has {}",
                hdr.msg_size,
                raw.len() - GIOP_HEADER_LEN
            )));
        }
        // zc-audit: allow(control-plane) — GIOP control frames carry headers only; payload travels as deposits
        Ok((hdr, raw[GIOP_HEADER_LEN..].to_vec()))
    }

    /// Pull announced deposits (separated path) or extract inline blocks
    /// (coupled path). Returns the blocks and, for the coupled path, the
    /// offset in `body` where argument decoding should resume.
    fn collect_deposits(
        &mut self,
        manifest: Option<DepositManifest>,
        body: &[u8],
        after_header: usize,
        order: ByteOrder,
    ) -> OrbResult<(Vec<ZcBytes>, usize)> {
        let Some(manifest) = manifest else {
            // No deposits: arguments start at the first 8-aligned offset.
            return Ok((Vec::new(), align_up(after_header, 8)));
        };
        if self.tuning.separate_data {
            let mut blocks = Vec::with_capacity(manifest.block_count());
            for &len in &manifest.block_lengths {
                blocks.push(self.conn.recv_data(len as usize)?);
                self.ctx.telemetry.note_wire_rx(len);
                self.ctx.telemetry.record(
                    TraceLayer::Giop,
                    EventKind::DepositReceived,
                    self.conn_id,
                    self.last_trace_id,
                    len,
                );
            }
            Ok((blocks, align_up(after_header, 8)))
        } else {
            // Inline: blocks precede the arguments, each 8-aligned with a
            // ulong length prefix. Copy each out into aligned storage.
            let mut dec =
                CdrDecoder::new(body, order).with_meter(std::sync::Arc::clone(&self.ctx.meter));
            dec.skip(after_header)?;
            let mut blocks = Vec::with_capacity(manifest.block_count());
            for &len in &manifest.block_lengths {
                dec.align(8)?;
                let announced = dec.read_u32()? as u64;
                if announced != len {
                    // zc-audit: allow(control-plane) — protocol error diagnostic
                    return Err(OrbError::Protocol(format!(
                        "inline deposit length {announced} disagrees with manifest {len}"
                    )));
                }
                let bytes = dec.read_raw(len as usize)?;
                let mut buf = self.ctx.pool.acquire(bytes.len().max(1));
                buf.set_len(bytes.len());
                self.ctx
                    .meter
                    .copy(zc_buffers::CopyLayer::Demarshal, buf.as_mut_slice(), bytes);
                blocks.push(buf.freeze());
            }
            dec.align(8)?;
            Ok((blocks, dec.position()))
        }
    }

    /// Whether an earlier reply timeout poisoned this connection (a stale
    /// reply may still arrive, so it must not carry another request).
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    fn check_poisoned(&self) -> OrbResult<()> {
        if self.poisoned {
            Err(OrbError::Protocol(
                "connection poisoned by an earlier reply timeout; resolve a fresh one".into(),
            ))
        } else {
            Ok(())
        }
    }

    /// Client: receive the reply to `expect_id`, failing with
    /// `Transport(Timeout)` if it does not arrive within `timeout`. A
    /// timeout poisons the connection (a stale reply may still be in
    /// flight); callers must resolve a fresh connection afterwards.
    pub fn recv_reply_timeout(
        &mut self,
        expect_id: u32,
        timeout: std::time::Duration,
    ) -> OrbResult<IncomingReply> {
        self.check_poisoned()?;
        self.conn.set_recv_timeout(Some(timeout))?;
        let result = self.recv_reply(expect_id);
        let _ = self.conn.set_recv_timeout(None);
        if matches!(result, Err(OrbError::Transport(TransportError::Timeout))) {
            self.poisoned = true;
            let _ = self.send_cancel(expect_id);
        }
        result
    }

    /// Client: send a request. `args_enc` must come from
    /// [`GiopConn::body_encoder`]. Returns the request id.
    pub fn send_request(
        &mut self,
        object_key: &[u8],
        operation: &str,
        response_expected: bool,
        args_enc: CdrEncoder,
    ) -> OrbResult<u32> {
        let (args, deposits) = args_enc.finish();
        self.send_request_raw(object_key, operation, response_expected, &args, deposits)
    }

    /// Client: send a request from already-finished argument bytes and
    /// deposit blocks. This is the retry-friendly entry point: the proxy
    /// finishes its encoder once and can resend the same bytes (deposits
    /// are reference-counted, so cloning them is cheap) on a replacement
    /// connection. Returns the request id.
    pub fn send_request_raw(
        &mut self,
        object_key: &[u8],
        operation: &str,
        response_expected: bool,
        args: &[u8],
        deposits: Vec<ZcBytes>,
    ) -> OrbResult<u32> {
        self.check_poisoned()?;
        let enabled = self.ctx.telemetry.is_enabled();
        // Span: header/manifest/context assembly is the paper's "deposit
        // registration" control work; timed from here to the send stamp.
        let reg_t0 = if enabled { zc_trace::now_ns() } else { 0 };
        let request_id = self.alloc_request_id();
        let trace_id = zc_trace::next_trace_id();
        self.last_trace_id = trace_id;
        // zc-audit: allow(control-plane) — object keys are small identifiers, not payload
        let mut header = RequestHeader::new(request_id, object_key.to_vec(), operation);
        header.response_expected = response_expected;
        if !deposits.is_empty() {
            header.service_contexts.push(
                DepositManifest {
                    block_lengths: deposits.iter().map(|b| b.len() as u64).collect(),
                }
                .to_context(),
            );
        }
        // Always stamped: the id and send timestamp are cheap to carry, and
        // a receiver with telemetry enabled can then correlate (and derive
        // the wire stage) even when ours is off.
        let sent_at_ns = zc_trace::now_ns();
        let (journey_id, attempt, cause) = self.pending_journey.take().unwrap_or_default();
        header.service_contexts.push(
            TraceContext {
                trace_id,
                sent_at_ns,
                journey_id,
                attempt,
                cause,
            }
            .to_context(),
        );
        // Piggyback our receive-side speculation counters so the peer's
        // deposit sender can degrade/upgrade its zero-copy path.
        if let Some(health) = self.zc_health_context() {
            header.service_contexts.push(health);
        }
        let dep_bytes: u64 = deposits.iter().map(|b| b.len() as u64).sum();
        // The attempt event joins this send's trace id to its journey.
        // Recorded *before* the write: a send that dies on a closed socket
        // still consumed this attempt, and the journey's ordinal chain must
        // show it or offline reconstruction sees a hole. An unknown cause
        // byte cannot happen locally (the proxy packs it from
        // `JourneyCause`), but stay lenient anyway.
        if enabled && journey_id != 0 {
            if let Some(c) = zc_trace::JourneyCause::from_u8(cause) {
                self.ctx
                    .telemetry
                    .record_attempt(self.conn_id, trace_id, c, attempt, journey_id);
            }
        }
        let mut enc = CdrEncoder::new(self.wire_order());
        header.marshal(&mut enc)?;
        self.send_message(MessageType::Request, enc, args, deposits)?;
        let tele = &self.ctx.telemetry;
        if enabled {
            tele.metrics().requests_sent.incr();
            let sent_done = zc_trace::now_ns();
            tele.record_stage(
                zc_trace::Stage::ClientDepositRegister,
                self.conn_id,
                trace_id,
                sent_at_ns.saturating_sub(reg_t0),
            );
            // ClientSend is a sub-interval of the receiver-derived Wire
            // stage: the local half (header marshal + socket hand-off).
            tele.record_stage(
                zc_trace::Stage::ClientSend,
                self.conn_id,
                trace_id,
                sent_done.saturating_sub(sent_at_ns),
            );
        }
        tele.record(
            TraceLayer::Giop,
            EventKind::RequestSent,
            self.conn_id,
            trace_id,
            dep_bytes,
        );
        Ok(request_id)
    }

    /// Client: receive the reply to `expect_id`.
    pub fn recv_reply(&mut self, expect_id: u32) -> OrbResult<IncomingReply> {
        let (msg_type, body, order) = self.recv_message()?;
        let arrival_ns = if self.ctx.telemetry.is_enabled() {
            zc_trace::now_ns()
        } else {
            0
        };
        match msg_type {
            MessageType::Reply => {}
            MessageType::CloseConnection => {
                return Err(OrbError::Transport(TransportError::Closed))
            }
            MessageType::MessageError => {
                return Err(OrbError::Protocol("peer reported MessageError".into()))
            }
            other => {
                // zc-audit: allow(control-plane) — protocol error diagnostic
                return Err(OrbError::Protocol(format!(
                    "unexpected {other:?} while awaiting Reply"
                )));
            }
        }
        let mut dec = CdrDecoder::new(&body, order);
        let header = ReplyHeader::demarshal(&mut dec)?;
        let after_header = dec.position();
        if header.request_id != expect_id {
            // zc-audit: allow(control-plane) — protocol error diagnostic
            return Err(OrbError::Protocol(format!(
                "reply id {} does not match request id {expect_id}",
                header.request_id
            )));
        }
        let manifest = DepositManifest::find_in(&header.service_contexts)?;
        self.note_peer_health_in(&header.service_contexts);
        match header.status {
            ReplyStatus::NoException => {
                // The zc flag is self-describing per message: every
                // descriptor pushes a deposit (even length 0), so a
                // manifest is present iff descriptors were used. This is
                // what lets a degraded peer marshal inline unilaterally.
                let zc = manifest.is_some();
                let (deposits, results_offset) =
                    self.collect_deposits(manifest, &body, after_header, order)?;
                let tele = &self.ctx.telemetry;
                if tele.is_enabled() {
                    tele.metrics().replies_ok.incr();
                    // Reply wire stage: the server's send stamp (echoed in
                    // the reply's trace context) → our arrival, on the
                    // shared in-process trace clock. Unstamped replies
                    // (foreign peers, old format) skip the stage.
                    let reply_sent_at = TraceContext::find_in(&header.service_contexts)
                        .ok()
                        .flatten()
                        .map(|t| t.sent_at_ns)
                        .unwrap_or(0);
                    if reply_sent_at != 0 && arrival_ns >= reply_sent_at {
                        tele.record_stage(
                            zc_trace::Stage::ClientReplyWire,
                            self.conn_id,
                            self.last_trace_id,
                            arrival_ns - reply_sent_at,
                        );
                    }
                    // Everything after arrival: header demarshal + deposit
                    // collection (result-value demarshal happens in the
                    // proxy and is not on this connection's clock).
                    tele.record_stage(
                        zc_trace::Stage::ClientReplyDemarshal,
                        self.conn_id,
                        self.last_trace_id,
                        zc_trace::now_ns().saturating_sub(arrival_ns),
                    );
                }
                tele.record(
                    TraceLayer::Giop,
                    EventKind::ReplyReceived,
                    self.conn_id,
                    self.last_trace_id,
                    deposits.iter().map(|b| b.len() as u64).sum(),
                );
                Ok(IncomingReply {
                    body,
                    results_offset,
                    deposits,
                    order,
                    zc,
                })
            }
            ReplyStatus::SystemException => {
                let mut dec = CdrDecoder::new(&body, order);
                ReplyHeader::demarshal(&mut dec)?;
                dec.align(8)?;
                let ex = SystemException::demarshal(&mut dec)?;
                let tele = &self.ctx.telemetry;
                if tele.is_enabled() {
                    tele.metrics().replies_exception.incr();
                }
                tele.record(
                    TraceLayer::Giop,
                    EventKind::Error,
                    self.conn_id,
                    self.last_trace_id,
                    ex.minor as u64,
                );
                Err(OrbError::System(ex))
            }
            ReplyStatus::UserException => {
                // body: repo-id string, then the encoded members
                let mut dec = CdrDecoder::new(&body, order);
                ReplyHeader::demarshal(&mut dec)?;
                dec.align(8)?;
                let repo_id = dec.read_string()?;
                // the members blob carries its own byte-order flag (the
                // servant's native order, which may differ from the wire
                // order on heterogeneous connections)
                let members_little = dec.read_bool()?;
                let members = dec.read_octet_seq()?;
                Err(OrbError::User(crate::UserExceptionData {
                    repo_id,
                    body: members,
                    order: ByteOrder::from_flag(members_little),
                }))
            }
            ReplyStatus::LocationForward => Err(OrbError::Protocol(
                "location forwarding is not supported by this ORB".into(),
            )),
        }
    }

    /// Server: receive the next request. `CancelRequest` messages are
    /// consumed silently (we never start executing before reading the next
    /// request, so a cancel that arrives here is already moot).
    pub fn recv_request(&mut self) -> OrbResult<IncomingRequest> {
        self.recv_request_admitted(|_, _, _| Ok(()))
            .map(|(req, ())| req)
    }

    /// Server: receive the next **admitted** request. `gate` runs after
    /// the request header and deposit manifest are decoded but *before*
    /// any deposit block is collected, with `(header, announced deposit
    /// bytes, carries-deposits)`. A refusal is cheap by construction: the
    /// announced blocks are drained straight off the data path without
    /// retaining a single pool page, the supplied system exception (e.g.
    /// `TRANSIENT` from admission control) answers the request, and the
    /// loop continues with the connection intact. On admission, the gate's
    /// success value (e.g. a queue-slot ticket) is returned alongside the
    /// request so the caller can scope the reservation to the dispatch.
    pub fn recv_request_admitted<T>(
        &mut self,
        mut gate: impl FnMut(&RequestHeader, u64, bool) -> Result<T, SystemException>,
    ) -> OrbResult<(IncomingRequest, T)> {
        loop {
            let (msg_type, body, order) = self.recv_message()?;
            match msg_type {
                MessageType::Request => {
                    let arrival_ns = if self.ctx.telemetry.is_enabled() {
                        zc_trace::now_ns()
                    } else {
                        0
                    };
                    let mut dec = CdrDecoder::new(&body, order);
                    let header = RequestHeader::demarshal(&mut dec)?;
                    let after_header = dec.position();
                    let manifest = DepositManifest::find_in(&header.service_contexts)?;
                    // A malformed trace context is ignored, not rejected:
                    // tracing is advisory and must never fail a request.
                    let tctx = TraceContext::find_in(&header.service_contexts)
                        .ok()
                        .flatten()
                        .unwrap_or_default();
                    let trace_id = tctx.trace_id;
                    self.last_trace_id = trace_id;
                    self.note_peer_health_in(&header.service_contexts);
                    // Self-describing per message: manifest present iff the
                    // sender used descriptors (see `recv_reply`).
                    let zc = manifest.is_some();
                    let announced: u64 = manifest
                        .as_ref()
                        .map(|m| m.block_lengths.iter().sum())
                        .unwrap_or(0);
                    let token = match gate(&header, announced, zc) {
                        Ok(t) => t,
                        Err(ex) => {
                            // Shed: drain the announced blocks (receive and
                            // immediately drop — no page is pinned past the
                            // refusal). On the coupled path the blocks are
                            // inline in `body` and simply never parsed.
                            if self.tuning.separate_data {
                                if let Some(m) = &manifest {
                                    for &len in &m.block_lengths {
                                        let _ = self.conn.recv_data(len as usize)?;
                                        self.ctx.telemetry.note_wire_rx(len);
                                    }
                                }
                            }
                            if header.response_expected {
                                self.send_reply_exception(header.request_id, &ex)?;
                            }
                            continue;
                        }
                    };
                    let (deposits, args_offset) =
                        self.collect_deposits(manifest, &body, after_header, order)?;
                    let tele = &self.ctx.telemetry;
                    if tele.is_enabled() {
                        let m = tele.metrics();
                        m.requests_received.incr();
                        if trace_id != 0 {
                            m.trace_contexts_seen.incr();
                        }
                        // Mirror the caller's journey annotation so a spool
                        // on this side alone can still reconstruct journeys.
                        // The cause byte is wire data: tolerate values from
                        // newer peers by dropping only the event, not the
                        // request.
                        if tctx.journey_id != 0 {
                            if let Some(c) = zc_trace::JourneyCause::from_u8(tctx.cause) {
                                tele.record_attempt(
                                    self.conn_id,
                                    trace_id,
                                    c,
                                    tctx.attempt,
                                    tctx.journey_id,
                                );
                            }
                        }
                        // Wire stage: the client's send stamp → our arrival,
                        // valid on the shared in-process trace clock.
                        if tctx.sent_at_ns != 0 && arrival_ns >= tctx.sent_at_ns {
                            tele.record_stage(
                                zc_trace::Stage::Wire,
                                self.conn_id,
                                trace_id,
                                arrival_ns - tctx.sent_at_ns,
                            );
                        }
                        // Receive stage: header demarshal + manifest parse +
                        // pulling every announced deposit off the data path.
                        tele.record_stage(
                            zc_trace::Stage::ServerRecv,
                            self.conn_id,
                            trace_id,
                            zc_trace::now_ns().saturating_sub(arrival_ns),
                        );
                    }
                    tele.record(
                        TraceLayer::Giop,
                        EventKind::RequestReceived,
                        self.conn_id,
                        trace_id,
                        deposits.iter().map(|b| b.len() as u64).sum(),
                    );
                    return Ok((
                        IncomingRequest {
                            header,
                            body,
                            args_offset,
                            deposits,
                            order,
                            zc,
                            trace_id,
                        },
                        token,
                    ));
                }
                MessageType::CancelRequest => continue,
                MessageType::CloseConnection => {
                    return Err(OrbError::Transport(TransportError::Closed))
                }
                MessageType::LocateRequest => {
                    // Answer OBJECT_HERE (2 would be forward; 1 = here).
                    let mut dec = CdrDecoder::new(&body, order);
                    let request_id = dec.read_u32()?;
                    let mut enc = CdrEncoder::new(self.wire_order());
                    enc.write_u32(request_id);
                    enc.write_u32(1); // OBJECT_HERE
                    let body = enc.finish_stream();
                    self.send_framed(MessageType::LocateReply, &body)?;
                    continue;
                }
                other => {
                    // zc-audit: allow(control-plane) — protocol error diagnostic
                    return Err(OrbError::Protocol(format!(
                        "unexpected {other:?} while awaiting Request"
                    )));
                }
            }
        }
    }

    /// Server: send a successful reply whose body is `results_enc`.
    pub fn send_reply_ok(&mut self, request_id: u32, results_enc: CdrEncoder) -> OrbResult<()> {
        let (results, deposits) = results_enc.finish();
        let mut header = ReplyHeader::ok(request_id);
        if !deposits.is_empty() {
            header.service_contexts.push(
                DepositManifest {
                    block_lengths: deposits.iter().map(|b| b.len() as u64).collect(),
                }
                .to_context(),
            );
        }
        if let Some(health) = self.zc_health_context() {
            header.service_contexts.push(health);
        }
        // Echo the request's trace id with our send stamp so the client can
        // derive the reply-wire stage (symmetric to `send_request_raw`).
        header.service_contexts.push(
            TraceContext {
                trace_id: self.last_trace_id,
                sent_at_ns: zc_trace::now_ns(),
                // Replies do not re-announce the journey: the client owns it.
                ..Default::default()
            }
            .to_context(),
        );
        let dep_bytes: u64 = deposits.iter().map(|b| b.len() as u64).sum();
        let mut enc = CdrEncoder::new(self.wire_order());
        header.marshal(&mut enc)?;
        self.send_message(MessageType::Reply, enc, &results, deposits)?;
        self.ctx.telemetry.record(
            TraceLayer::Giop,
            EventKind::ReplySent,
            self.conn_id,
            self.last_trace_id,
            dep_bytes,
        );
        Ok(())
    }

    /// Server: send a system-exception reply.
    pub fn send_reply_exception(&mut self, request_id: u32, ex: &SystemException) -> OrbResult<()> {
        let mut header = ReplyHeader::ok(request_id);
        header.status = ReplyStatus::SystemException;
        if let Some(health) = self.zc_health_context() {
            header.service_contexts.push(health);
        }
        let mut enc = CdrEncoder::new(self.wire_order());
        header.marshal(&mut enc)?;
        enc.align(8);
        let mut body_enc = CdrEncoder::new(self.wire_order());
        ex.marshal(&mut body_enc)?;
        let payload = body_enc.finish_stream();
        self.send_message(MessageType::Reply, enc, &payload, Vec::new())?;
        self.ctx.telemetry.record(
            TraceLayer::Giop,
            EventKind::Error,
            self.conn_id,
            self.last_trace_id,
            ex.minor as u64,
        );
        Ok(())
    }

    /// Server: send a user-exception reply (repo id + encoded members).
    pub fn send_reply_user(
        &mut self,
        request_id: u32,
        data: &crate::UserExceptionData,
    ) -> OrbResult<()> {
        let mut header = ReplyHeader::ok(request_id);
        header.status = ReplyStatus::UserException;
        let mut enc = CdrEncoder::new(self.wire_order());
        header.marshal(&mut enc)?;
        enc.align(8);
        let mut body_enc = CdrEncoder::new(self.wire_order());
        body_enc.write_string(&data.repo_id);
        // Members stay in the servant's encoding order; ship that order as
        // a flag so heterogeneous clients decode correctly.
        body_enc.write_bool(data.order.flag());
        body_enc.write_octet_seq(&data.body);
        let payload = body_enc.finish_stream();
        self.send_message(MessageType::Reply, enc, &payload, Vec::new())
    }

    /// Either side: orderly shutdown notification (best effort).
    pub fn send_close(&mut self) {
        let _ = self.send_framed(MessageType::CloseConnection, &[]);
    }

    /// Either side: report an unparseable/oversized message (best effort).
    /// GIOP's answer when there is no request id to attach an exception to.
    pub fn send_message_error(&mut self) {
        let _ = self.send_framed(MessageType::MessageError, &[]);
    }

    /// Client: ask whether the peer hosts `object_key` (GIOP
    /// LocateRequest/LocateReply). Returns `true` for OBJECT_HERE.
    ///
    /// Note: per GIOP a server may answer OBJECT_HERE based on reachability
    /// alone; a request to a here-but-unregistered key still raises
    /// `OBJECT_NOT_EXIST` at invocation time.
    pub fn locate(&mut self, object_key: &[u8]) -> OrbResult<bool> {
        let request_id = self.alloc_request_id();
        let mut enc = CdrEncoder::new(self.wire_order());
        enc.write_u32(request_id);
        enc.write_octet_seq(object_key);
        let body = enc.finish_stream();
        self.send_framed(MessageType::LocateRequest, &body)?;
        let (msg_type, body, order) = self.recv_message()?;
        if msg_type != MessageType::LocateReply {
            // zc-audit: allow(control-plane) — protocol error diagnostic
            return Err(OrbError::Protocol(format!(
                "expected LocateReply, got {msg_type:?}"
            )));
        }
        let mut dec = CdrDecoder::new(&body, order);
        let id = dec.read_u32()?;
        if id != request_id {
            // zc-audit: allow(control-plane) — protocol error diagnostic
            return Err(OrbError::Protocol(format!(
                "LocateReply id {id} does not match {request_id}"
            )));
        }
        let status = dec.read_u32()?;
        Ok(status == 1) // 0 = UNKNOWN_OBJECT, 1 = OBJECT_HERE, 2 = FORWARD
    }

    /// Client: cancel an outstanding request (advisory, per GIOP).
    pub fn send_cancel(&mut self, request_id: u32) -> OrbResult<()> {
        let mut enc = CdrEncoder::new(self.wire_order());
        enc.write_u32(request_id);
        let body = enc.finish_stream();
        self.send_framed(MessageType::CancelRequest, &body)
    }
}

impl Drop for GiopConn {
    fn drop(&mut self) {
        // Balance the open-connections gauge (raised in client()/server());
        // a connection that dies while degraded also leaves that gauge.
        let tele = &self.ctx.telemetry;
        if self.degrade.degraded {
            tele.note_degraded(false);
        }
        tele.note_conn_closed();
    }
}

#[inline]
fn align_up(n: usize, a: usize) -> usize {
    n.div_ceil(a) * a
}
