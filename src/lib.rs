//! # zcorba — Zero-Copy for CORBA
//!
//! A Rust reproduction of *“Zero-Copy for CORBA — Efficient Communication
//! for Distributed Object Middleware”* (Kurmann & Stricker, HPDC 2003):
//! a CORBA-style distributed-object middleware whose bulk-data path runs
//! under a **strict zero-copy regime** — payload bytes are touched exactly
//! once, by the application, on their way from one process's memory to
//! another's.
//!
//! This crate is the umbrella: it re-exports the workspace members so that
//! `use zcorba::…` reaches everything, and hosts the repository-level
//! examples and cross-crate integration tests.
//!
//! ## The pieces
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`buffers`] | `zc-buffers` | page-aligned buffers, [`buffers::ZcBytes`], pools, the [`buffers::CopyMeter`] |
//! | [`cdr`] | `zc-cdr` | CDR marshaling, [`cdr::OctetSeq`] / [`cdr::ZcOctetSeq`] |
//! | [`giop`] | `zc-giop` | GIOP messages, service contexts, deposit manifests, IORs, handshakes |
//! | [`trace`] | `zc-trace` | observability: lock-free flight recorder, metrics registry, the merged [`trace::OrbTelemetry`] snapshot |
//! | [`transport`] | `zc-transport` | separated control/data transports: simulated kernel stacks (copying & zero-copy/speculative) and real loopback TCP |
//! | [`orb`] | `zc-orb` | the ORB: stubs, skeletons, negotiation, the direct-deposit sender/receiver |
//! | [`idl`] | `zc-idl` | the IDL compiler (`zc-idlc`): parser → checker → Rust stub/skeleton generator |
//! | [`simnet`] | `zc-simnet` | calibrated model of the paper's 2003 testbed (figures' absolute numbers) |
//! | [`ttcp`] | `zc-ttcp` | the TTCP benchmark in all of the paper's versions |
//! | [`mpeg`] | `zc-mpeg` | the §5.4 application: synthetic HDTV source, block encoder, CORBA transcoding farm |
//!
//! ## Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use zcorba::orb::{Orb, ObjectAdapterExt, Servant, ServerRequest, OrbResult};
//! use zcorba::cdr::ZcOctetSeq;
//! use zcorba::transport::{SimConfig, SimNetwork};
//!
//! struct Store;
//! impl Servant for Store {
//!     fn repo_id(&self) -> &'static str { "IDL:demo/Store:1.0" }
//!     fn dispatch(&self, op: &str, req: &mut ServerRequest<'_>) -> OrbResult<()> {
//!         match op {
//!             "put" => {
//!                 let blob: ZcOctetSeq = req.arg()?;
//!                 req.result(&(blob.len() as u64))
//!             }
//!             _ => req.bad_operation(op),
//!         }
//!     }
//! }
//!
//! let net = SimNetwork::new(SimConfig::zero_copy());
//! let server_orb = Orb::builder().sim(net.clone()).build();
//! server_orb.adapter().register("store", Arc::new(Store));
//! let server = server_orb.serve(0).unwrap();
//! let ior = server.ior_for("store", "IDL:demo/Store:1.0").unwrap();
//!
//! let client = Orb::builder().sim(net).build();
//! let store = client.resolve(&ior).unwrap();
//! let blob = ZcOctetSeq::with_length(1 << 20);      // one page-aligned MiB
//! let n: u64 = store.request("put").arg(&blob).unwrap()
//!     .invoke().unwrap().result().unwrap();
//! assert_eq!(n, 1 << 20);                           // …moved with zero copies
//! ```

pub use zc_buffers as buffers;
pub use zc_cdr as cdr;
pub use zc_giop as giop;
pub use zc_idl as idl;
pub use zc_mpeg as mpeg;
pub use zc_orb as orb;
pub use zc_simnet as simnet;
pub use zc_trace as trace;
pub use zc_transport as transport;
pub use zc_ttcp as ttcp;

/// Crate version (workspace-wide).
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
