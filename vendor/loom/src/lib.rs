//! Offline stand-in for the `loom` model checker.
//!
//! Real loom exhaustively explores thread interleavings of code written
//! against its shadow `loom::sync` types. It cannot be vendored into this
//! air-gapped workspace, so this shim keeps the *API shape* — `loom::model`,
//! `loom::thread`, `loom::sync` — while implementing a weaker but still
//! useful discipline: **seeded stochastic interleaving exploration**.
//!
//! [`model`] runs the closure many times (`LOOM_ITERS`, default 256) on real
//! threads. Each execution perturbs the schedule differently: threads
//! spawned through [`thread::spawn`] interleave yields and short spins at
//! spawn and at every [`explore`] point, driven by a deterministic
//! per-execution seed. A failing execution panics with its seed so the run
//! can be reproduced via `LOOM_SEED`.
//!
//! When the real loom becomes available, swap the path dependency for the
//! registry crate: test code using `loom::model` + `loom::thread` compiles
//! against both.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Re-exports mirroring `loom::sync`. The shim does not shadow std's
/// primitives — code under test runs its ordinary implementation, and the
/// scheduler perturbation comes from [`thread::spawn`]/[`explore`] instead.
pub mod sync {
    pub use std::sync::{Arc, Condvar, Mutex, MutexGuard, RwLock};

    /// Mirror of `loom::sync::atomic`.
    pub mod atomic {
        pub use std::sync::atomic::{
            fence, AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering,
        };
    }
}

thread_local! {
    /// Per-thread schedule-perturbation RNG state (0 = perturbation off).
    static SCHED_STATE: Cell<u64> = const { Cell::new(0) };
}

static EXECUTION_SEED: AtomicU64 = AtomicU64::new(0);

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A schedule-perturbation point: in roughly one of three draws the calling
/// thread yields, and occasionally it burns a short spin, shaking loose
/// interleavings a plain `cargo test` run would rarely hit. No-op outside
/// [`model`].
pub fn explore() {
    SCHED_STATE.with(|cell| {
        let mut s = cell.get();
        if s == 0 {
            return;
        }
        let draw = splitmix64(&mut s);
        cell.set(s);
        match draw % 8 {
            0 | 1 => std::thread::yield_now(),
            2 => {
                for _ in 0..(draw >> 32) % 400 {
                    std::hint::spin_loop();
                }
            }
            _ => {}
        }
    });
}

/// Mirror of `loom::thread`: spawn wraps `std::thread::spawn` and arms the
/// child with the execution's perturbation seed.
pub mod thread {
    pub use std::thread::{yield_now, JoinHandle};

    use super::{splitmix64, SCHED_STATE};
    use std::sync::atomic::Ordering;

    /// Spawn a thread participating in the current model execution.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let mut seed = super::EXECUTION_SEED.load(Ordering::Relaxed);
        let child_seed = if seed == 0 { 0 } else { splitmix64(&mut seed) };
        std::thread::spawn(move || {
            SCHED_STATE.with(|cell| cell.set(child_seed));
            super::explore();
            f()
        })
    }
}

/// Run `f` under stochastic interleaving exploration.
///
/// Executes `f` once per iteration (default 256; override with `LOOM_ITERS`)
/// with a fresh deterministic seed perturbing every [`thread::spawn`] and
/// [`explore`] point. A panic inside `f` is annotated with the execution
/// seed; re-run with `LOOM_SEED=<seed>` to replay just that schedule.
pub fn model<F>(f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    let iters: u64 = std::env::var("LOOM_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(256);
    let forced: Option<u64> = std::env::var("LOOM_SEED").ok().and_then(|v| v.parse().ok());

    let mut base = 0x10_0a4d_5eedu64;
    for i in 0..iters {
        let seed = forced.unwrap_or_else(|| splitmix64(&mut base)).max(1);
        EXECUTION_SEED.store(seed, Ordering::Relaxed);
        SCHED_STATE.with(|cell| cell.set(seed));
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(&f));
        SCHED_STATE.with(|cell| cell.set(0));
        EXECUTION_SEED.store(0, Ordering::Relaxed);
        if let Err(panic) = outcome {
            eprintln!("loom-shim: execution {i} failed; replay with LOOM_SEED={seed}");
            std::panic::resume_unwind(panic);
        }
        if forced.is_some() {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn model_runs_iterations() {
        let count = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&count);
        model(move || {
            c.fetch_add(1, Ordering::Relaxed);
        });
        assert!(count.load(Ordering::Relaxed) >= 1);
    }

    #[test]
    fn spawned_threads_join_and_return() {
        model(|| {
            let h = thread::spawn(|| 7u32);
            explore();
            assert_eq!(h.join().unwrap(), 7);
        });
    }
}
