//! Offline stand-in for the `criterion` crate.
//!
//! A deliberately small wall-clock benchmark harness exposing the criterion
//! API surface the `zc-bench` benches use: `Criterion::benchmark_group`,
//! `BenchmarkGroup::{sample_size, throughput, bench_function,
//! bench_with_input, finish}`, `Bencher::iter`, `BenchmarkId`, `Throughput`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros.
//!
//! There is no statistical engine: each benchmark warms up briefly, runs
//! `sample_size` timed samples, and prints min/mean throughput-annotated
//! results. That is enough to regenerate the paper's figures in relative
//! terms; swap in the real criterion (same call sites) for publication-grade
//! confidence intervals.

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched work.
#[inline]
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Units a benchmark processes per iteration; used to report rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Abstract elements processed per iteration.
    Elements(u64),
}

/// A `group/function/parameter` benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    param: String,
}

impl BenchmarkId {
    /// Identifier from a function name plus a displayable parameter.
    pub fn new(name: impl Into<String>, param: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: name.into(),
            param: param.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.param.is_empty() {
            f.write_str(&self.name)
        } else {
            write!(f, "{}/{}", self.name, self.param)
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId {
            name: s.to_string(),
            param: String::new(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId {
            name: s,
            param: String::new(),
        }
    }
}

/// Entry point handed to benchmark functions.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("== group {name}");
        BenchmarkGroup {
            _c: self,
            name,
            sample_size: 10,
            throughput: None,
        }
    }

    /// Bench a function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into().to_string(), 10, None, |b| f(b));
    }
}

/// A group of benchmarks sharing sample size and throughput settings.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (criterion's minimum is 10).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declare per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Bench a closure with no external input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        run_one(&label, self.sample_size, self.throughput, |b| f(b));
        self
    }

    /// Bench a closure against a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into());
        run_one(&label, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    /// End the group (report separator).
    pub fn finish(self) {}
}

/// Times closures handed to it by the benchmark body.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Run `f` repeatedly, recording wall-clock samples.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        // One untimed warm-up iteration, then the timed samples.
        black_box(f());
        for _ in 0..self.samples.capacity() {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(f());
            }
            self.samples
                .push(start.elapsed() / self.iters_per_sample as u32);
        }
    }
}

fn run_one<F>(label: &str, sample_size: usize, throughput: Option<Throughput>, mut body: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        iters_per_sample: 1,
    };
    body(&mut b);
    if b.samples.is_empty() {
        eprintln!("{label:<40} (no samples)");
        return;
    }
    let min = b.samples.iter().min().copied().unwrap_or_default();
    let sum: Duration = b.samples.iter().sum();
    let mean = sum / b.samples.len() as u32;
    let rate = match throughput {
        Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
            let mibs = n as f64 / mean.as_secs_f64() / (1024.0 * 1024.0);
            format!("  {mibs:>10.1} MiB/s")
        }
        Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
            let eps = n as f64 / mean.as_secs_f64();
            format!("  {eps:>10.0} elem/s")
        }
        _ => String::new(),
    };
    eprintln!("{label:<40} mean {mean:>12.3?}  min {min:>12.3?}{rate}");
}

/// Group benchmark functions into one callable, as the real criterion does.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit a `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.throughput(Throughput::Bytes(1024));
        let mut runs = 0u32;
        group.bench_with_input(BenchmarkId::new("sum", 8), &8u64, |b, &n| {
            b.iter(|| {
                runs += 1;
                (0..n).sum::<u64>()
            });
        });
        group.finish();
        assert!(runs >= 3, "body must have been exercised");
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 64).to_string(), "f/64");
        assert_eq!(BenchmarkId::from("bare").to_string(), "bare");
    }
}
