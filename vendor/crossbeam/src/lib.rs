//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the `crossbeam::channel` subset the workspace uses: an unbounded
//! MPMC channel whose `Sender` and `Receiver` are both cloneable and `Send`,
//! with disconnect-aware `recv`/`recv_timeout`. Implemented over a
//! `Mutex<VecDeque>` + `Condvar`; correctness over raw speed — the simulated
//! network it backs meters copies, not channel latency.

pub mod channel;
