//! An unbounded multi-producer multi-consumer channel mirroring the
//! `crossbeam-channel` API surface used by `zc-transport`.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Error returned by [`Sender::send`] when every receiver is gone. Carries
/// the unsent message back to the caller, like crossbeam's.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

/// Error returned by [`Receiver::recv`] when the channel is empty and every
/// sender is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "receiving on an empty and disconnected channel")
    }
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The timeout elapsed with no message available.
    Timeout,
    /// The channel is empty and every sender is gone.
    Disconnected,
}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// No message currently queued.
    Empty,
    /// The channel is empty and every sender is gone.
    Disconnected,
}

struct Shared<T> {
    queue: Mutex<State<T>>,
    not_empty: Condvar,
}

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

/// Create an unbounded channel. Both halves are cloneable; the channel is
/// disconnected for a receiver once all senders are dropped (and vice versa).
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

/// The sending half of an unbounded channel.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Sender<T> {
    /// Enqueue `msg`, failing (and returning the message) if every receiver
    /// has been dropped.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut st = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        if st.receivers == 0 {
            return Err(SendError(msg));
        }
        st.queue.push_back(msg);
        drop(st);
        self.shared.not_empty.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        let mut st = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        st.senders += 1;
        drop(st);
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        st.senders -= 1;
        let disconnected = st.senders == 0;
        drop(st);
        if disconnected {
            // Wake blocked receivers so they observe the disconnect.
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

/// The receiving half of an unbounded channel.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Receiver<T> {
    /// Block until a message arrives or every sender is dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut st = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(v) = st.queue.pop_front() {
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvError);
            }
            st = self
                .shared
                .not_empty
                .wait(st)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Block until a message arrives, every sender is dropped, or `timeout`
    /// elapses.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut st = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(v) = st.queue.pop_front() {
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _res) = self
                .shared
                .not_empty
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            st = guard;
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut st = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(v) = st.queue.pop_front() {
            return Ok(v);
        }
        if st.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.shared
            .queue
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .queue
            .len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        let mut st = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        st.receivers += 1;
        drop(st);
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut st = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        st.receivers -= 1;
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_fifo() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn disconnect_on_sender_drop() {
        let (tx, rx) = unbounded::<u8>();
        tx.send(9).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(9), "queued messages drain after disconnect");
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_fails_without_receivers() {
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert_eq!(tx.send(1), Err(SendError(1)));
    }

    #[test]
    fn recv_timeout_times_out() {
        let (_tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn cross_thread_wakeup() {
        let (tx, rx) = unbounded();
        let h = std::thread::spawn(move || rx.recv().unwrap());
        std::thread::sleep(Duration::from_millis(20));
        tx.send(42u32).unwrap();
        assert_eq!(h.join().unwrap(), 42);
    }

    #[test]
    fn cloned_sender_keeps_channel_alive() {
        let (tx, rx) = unbounded::<u8>();
        let tx2 = tx.clone();
        drop(tx);
        tx2.send(5).unwrap();
        assert_eq!(rx.recv(), Ok(5));
        drop(tx2);
        assert_eq!(rx.recv(), Err(RecvError));
    }
}
