//! Offline stand-in for the `rand` crate.
//!
//! Deterministic pseudo-randomness for the simulated network's speculation
//! outcomes and workload generators. Implements the slice of the `rand 0.8`
//! API the workspace uses: `Rng::{gen, gen_range, gen_bool, fill}`,
//! `SeedableRng::seed_from_u64`, `rngs::StdRng`, and `thread_rng()`.
//!
//! The generator is xoshiro256**, seeded through splitmix64 — the same
//! construction the real `rand` uses for its small RNGs. It is *not*
//! cryptographically secure, which matches its use here: reproducible
//! experiment schedules, never secrets.

use std::cell::Cell;

/// A source of raw random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let w = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
    }
}

/// Types that can be sampled uniformly from an RNG (the shim's stand-in for
/// `Standard: Distribution<T>`).
pub trait SampleUniform: Sized {
    /// Draw a uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for u128 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl SampleUniform for i128 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> i128 {
        u128::sample(rng) as i128
    }
}

impl SampleUniform for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl SampleUniform for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleUniform for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly distributed value of `T`.
    #[inline]
    fn gen<T: SampleUniform>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform `u64` in `[low, high)` (rejection-free Lemire-style
    /// reduction; the tiny modulo bias is irrelevant for workloads).
    #[inline]
    fn gen_range_u64(&mut self, low: u64, high: u64) -> u64
    where
        Self: Sized,
    {
        assert!(low < high, "gen_range: empty range");
        let span = high - low;
        low + (((self.next_u64() as u128 * span as u128) >> 64) as u64)
    }

    /// A uniform `usize` in the given half-open range.
    #[inline]
    fn gen_range(&mut self, range: std::ops::Range<usize>) -> usize
    where
        Self: Sized,
    {
        self.gen_range_u64(range.start as u64, range.end as u64) as usize
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }

    /// Fill a byte slice with random bytes.
    #[inline]
    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed (expanded internally via splitmix64).
    fn seed_from_u64(seed: u64) -> Self;
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named RNG types.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard deterministic RNG: xoshiro256**.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

thread_local! {
    static THREAD_RNG_SEED: Cell<u64> = const { Cell::new(0) };
}

/// A per-thread RNG seeded from the system time on first use. Returned by
/// value (unlike real `rand`'s handle), which the call sites here accept.
pub fn thread_rng() -> rngs::StdRng {
    use std::time::{SystemTime, UNIX_EPOCH};
    let seed = THREAD_RNG_SEED.with(|cell| {
        let mut s = cell.get();
        if s == 0 {
            s = SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_nanos() as u64)
                .unwrap_or(0x5eed)
                | 1;
        }
        cell.set(s.wrapping_add(0x9E37_79B9_7F4A_7C15));
        s
    });
    rngs::StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 4, "streams from different seeds should diverge");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut r = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits} hits for p=0.25");
    }

    #[test]
    fn gen_range_within_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = r.gen_range(10..20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn fill_covers_slice() {
        let mut r = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 37];
        r.fill(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
