//! Offline stand-in for the `proptest` crate.
//!
//! The real proptest cannot be vendored into this air-gapped workspace, so
//! this shim re-implements the slice of its API that the workspace's
//! property tests use:
//!
//! * [`strategy::Strategy`] with `prop_map`, `prop_recursive`, `boxed`,
//!   tuple/range/string-literal strategies and [`strategy::Just`];
//! * [`arbitrary::any`] for primitives;
//! * [`collection::vec`] / [`collection::hash_set`];
//! * the [`proptest!`], [`prop_oneof!`], [`prop_assert!`] and
//!   [`prop_assert_eq!`] macros;
//! * [`test_runner::ProptestConfig`] with `with_cases`.
//!
//! Differences from real proptest, by design: there is **no shrinking** (a
//! failing case reports its deterministic seed instead), string strategies
//! implement a pragmatic regex subset (literals, classes, groups with
//! alternation, `* + ? {n} {n,m}` quantifiers, `\PC`), and case counts
//! default to `PROPTEST_CASES` or 48. Failure output names the test, the
//! case index and the seed, so a failure reproduces exactly by re-running
//! the same binary.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Assert a condition inside a `proptest!` body, failing the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Assert equality inside a `proptest!` body, failing the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Assert inequality inside a `proptest!` body, failing the current case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Define property tests. Mirrors real proptest's surface:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///     #[test]
///     fn my_prop(x: u32, s in "[a-z]{1,4}") { prop_assert!(x as usize >= 0); }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr) $(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            $crate::__proptest_case!(($cfg) (stringify!($name)) $body [] $($params)*);
        }
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case {
    // All parameters munched: build the tuple strategy and run the cases.
    (($cfg:expr) ($name:expr) $body:block [$(($pat:pat, $strat:expr))*]) => {{
        let __config = $cfg;
        let __strategy = ($($strat,)*);
        $crate::test_runner::run_cases(&__config, $name, &__strategy, |__vals| {
            let ($($pat,)*) = __vals;
            $body
            ::core::result::Result::Ok(())
        });
    }};
    // `pattern in strategy` parameter.
    (($cfg:expr) ($name:expr) $body:block [$($acc:tt)*] $pat:pat in $strat:expr, $($rest:tt)*) => {
        $crate::__proptest_case!(($cfg) ($name) $body [$($acc)* ($pat, $strat)] $($rest)*)
    };
    (($cfg:expr) ($name:expr) $body:block [$($acc:tt)*] $pat:pat in $strat:expr) => {
        $crate::__proptest_case!(($cfg) ($name) $body [$($acc)* ($pat, $strat)])
    };
    // `name: Type` parameter, meaning `any::<Type>()`.
    (($cfg:expr) ($name:expr) $body:block [$($acc:tt)*] $var:ident: $ty:ty, $($rest:tt)*) => {
        $crate::__proptest_case!(($cfg) ($name) $body
            [$($acc)* ($var, $crate::arbitrary::any::<$ty>())] $($rest)*)
    };
    (($cfg:expr) ($name:expr) $body:block [$($acc:tt)*] $var:ident: $ty:ty) => {
        $crate::__proptest_case!(($cfg) ($name) $body
            [$($acc)* ($var, $crate::arbitrary::any::<$ty>())])
    };
}
