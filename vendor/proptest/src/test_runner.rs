//! Deterministic case runner and RNG for the proptest shim.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

use crate::strategy::Strategy;

/// The RNG handed to strategies. Wraps the workspace's deterministic
/// [`StdRng`] so every case is reproducible from `(test name, case index)`.
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// RNG for one case, derived from the run seed and the case index.
    pub fn for_case(run_seed: u64, case: u64) -> TestRng {
        TestRng {
            inner: StdRng::seed_from_u64(run_seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Next raw 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform value in `[0, n)`; `n` must be non-zero.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform `usize` in the inclusive range `[lo, hi]`.
    #[inline]
    pub fn size_in(&mut self, lo: usize, hi: usize) -> usize {
        if hi <= lo {
            return lo;
        }
        lo + self.below((hi - lo + 1) as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }
}

/// Failure of a single property case (returned by `prop_assert!`).
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failed assertion with the given message.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
        }
    }

    /// The failure message.
    pub fn message(&self) -> &str {
        &self.message
    }
}

/// Runner configuration. Only `cases` is honored; the other knobs real
/// proptest exposes have no meaning without shrinking.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run exactly `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(48);
        ProptestConfig { cases }
    }
}

fn run_seed(test_name: &str) -> u64 {
    if let Ok(v) = std::env::var("PROPTEST_SEED") {
        if let Ok(s) = v.parse() {
            return s;
        }
    }
    // FNV-1a over the test name: stable across runs and platforms.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Drive `body` over `config.cases` generated inputs. Panics (failing the
/// `#[test]`) on the first case whose body returns an error or panics,
/// reporting the case index and seed for reproduction.
pub fn run_cases<S, F>(config: &ProptestConfig, test_name: &str, strategy: &S, mut body: F)
where
    S: Strategy,
    F: FnMut(S::Value) -> Result<(), TestCaseError>,
{
    let seed = run_seed(test_name);
    for case in 0..config.cases as u64 {
        let mut rng = TestRng::for_case(seed, case);
        let value = strategy.generate(&mut rng);
        match catch_unwind(AssertUnwindSafe(|| body(value))) {
            Ok(Ok(())) => {}
            Ok(Err(e)) => panic!(
                "proptest {test_name}: case {case}/{} failed (seed {seed:#x}): {}",
                config.cases,
                e.message()
            ),
            Err(panic) => {
                eprintln!(
                    "proptest {test_name}: case {case}/{} panicked (seed {seed:#x})",
                    config.cases
                );
                resume_unwind(panic);
            }
        }
    }
}
