//! Collection strategies: `vec` and `hash_set`.

use std::collections::HashSet;
use std::hash::Hash;
use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// An inclusive size range for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        rng.size_in(self.lo, self.hi)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy for `Vec<T>` with element strategy `element` and a length drawn
/// from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `HashSet<T>`: draws elements until the target size is
/// reached, giving up (with whatever was collected, but never below the
/// range minimum unless the element domain is too small) after a bounded
/// number of duplicate draws.
pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Hash + Eq,
{
    HashSetStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`hash_set`].
pub struct HashSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Hash + Eq,
{
    type Value = HashSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
        let target = self.size.pick(rng);
        let mut out = HashSet::with_capacity(target);
        let mut attempts = 0usize;
        let max_attempts = target * 50 + 100;
        while out.len() < target && attempts < max_attempts {
            out.insert(self.element.generate(rng));
            attempts += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Just;

    fn rng() -> TestRng {
        TestRng::for_case(0xc011, 0)
    }

    #[test]
    fn vec_length_in_range() {
        let s = vec(0u8..=255, 3..10);
        let mut r = rng();
        for _ in 0..100 {
            let v = s.generate(&mut r);
            assert!((3..10).contains(&v.len()));
        }
    }

    #[test]
    fn vec_exact_size() {
        let s = vec(Just(7u8), 4usize);
        assert_eq!(s.generate(&mut rng()), vec![7, 7, 7, 7]);
    }

    #[test]
    fn hash_set_reaches_target_when_domain_allows() {
        let s = hash_set(0u32..1_000_000, 5..=8);
        let mut r = rng();
        for _ in 0..50 {
            let set = s.generate(&mut r);
            assert!((5..=8).contains(&set.len()));
        }
    }

    #[test]
    fn hash_set_small_domain_saturates() {
        let s = hash_set(0u8..2, 1..=5);
        let set = s.generate(&mut rng());
        assert!(!set.is_empty() && set.len() <= 2);
    }
}
