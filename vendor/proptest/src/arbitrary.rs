//! `any::<T>()` — the default strategy for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Generate a uniform value over the type's full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[inline]
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    #[inline]
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    /// Arbitrary *bit patterns*, including NaNs and infinities — exactly
    /// what serialization round-trip tests want to see.
    #[inline]
    fn arbitrary(rng: &mut TestRng) -> f64 {
        f64::from_bits(rng.next_u64())
    }
}

impl Arbitrary for f32 {
    #[inline]
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f32::from_bits(rng.next_u64() as u32)
    }
}

impl Arbitrary for char {
    /// Mostly ASCII printable with occasional multi-byte code points.
    fn arbitrary(rng: &mut TestRng) -> char {
        match rng.below(8) {
            0 => char::from_u32(0x00A1 + rng.below(0x500) as u32).unwrap_or('¿'),
            _ => (0x20u8 + rng.below(0x5F) as u8) as char,
        }
    }
}

/// The strategy returned by [`any`].
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy producing uniform values of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_generates_varied_values() {
        let s = any::<u32>();
        let mut rng = TestRng::for_case(1, 0);
        let a = s.generate(&mut rng);
        let b = s.generate(&mut rng);
        let c = s.generate(&mut rng);
        assert!(a != b || b != c, "three draws should not all collide");
    }

    #[test]
    fn any_f64_covers_bit_patterns() {
        let s = any::<f64>();
        let mut rng = TestRng::for_case(2, 0);
        let mut saw_negative = false;
        for _ in 0..256 {
            if s.generate(&mut rng).is_sign_negative() {
                saw_negative = true;
            }
        }
        assert!(saw_negative);
    }
}
