//! The [`Strategy`] trait and its combinators.
//!
//! A strategy here is simply a deterministic generator: `generate(rng)`
//! produces one value. There is no shrinking tree, which keeps every
//! combinator a few lines and is sufficient for regression-style property
//! testing with reproducible seeds.

use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

use crate::test_runner::TestRng;

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erase into a cheaply clonable boxed strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Arc::new(self),
        }
    }

    /// Build a recursive strategy: up to `depth` applications of `recurse`
    /// layered over `self` as the leaf generator. The `_desired_size` and
    /// `_expected_branch_size` tuning knobs of real proptest are accepted
    /// and ignored (no size-driven sampling here).
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let base = self.boxed();
        let mut current = base.clone();
        for _ in 0..depth.max(1) {
            let deeper = recurse(current).boxed();
            // Each level flips between terminating at a leaf and recursing
            // one level deeper, so generated values span all depths.
            current = Union::new(vec![base.clone(), deeper]).boxed();
        }
        current
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A type-erased, reference-counted strategy (clone is O(1)).
pub struct BoxedStrategy<T> {
    inner: Arc<dyn Strategy<Value = T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate(rng)
    }
}

/// Uniform choice between strategies of one value type (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Choose uniformly among `options`.
    ///
    /// # Panics
    /// If `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        // Scale a 53-bit fraction to the closed interval.
        let frac = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        lo + frac * (hi - lo)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() as f32 * (self.end - self.start)
    }
}

/// The unit strategy (zero-parameter property bodies).
impl Strategy for () {
    type Value = ();
    fn generate(&self, _rng: &mut TestRng) {}
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
    (A, B, C, D, E, F, G, H, I)
    (A, B, C, D, E, F, G, H, I, J)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_case(0x5eed, 0)
    }

    #[test]
    fn just_and_map() {
        let s = Just(21).prop_map(|x| x * 2);
        assert_eq!(s.generate(&mut rng()), 42);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..1000 {
            let v = (10u32..20).generate(&mut r);
            assert!((10..20).contains(&v));
            let w = (-5i64..=5).generate(&mut r);
            assert!((-5..=5).contains(&w));
            let f = (0.25f64..0.75).generate(&mut r);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn union_hits_every_option() {
        let s = Union::new(vec![
            Just(1u8).boxed(),
            Just(2u8).boxed(),
            Just(3u8).boxed(),
        ]);
        let mut seen = [false; 4];
        let mut r = rng();
        for _ in 0..200 {
            seen[s.generate(&mut r) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn recursive_reaches_depth() {
        // Value counts nesting depth; leaf = 0.
        let s = Just(0u32).prop_recursive(3, 8, 2, |inner| inner.prop_map(|d| d + 1));
        let mut r = rng();
        let mut max = 0;
        for _ in 0..500 {
            max = max.max(s.generate(&mut r));
        }
        assert!(max >= 2, "recursion should nest (max depth seen: {max})");
        assert!(max <= 3, "depth bound respected");
    }

    #[test]
    fn tuples_compose() {
        let s = (Just(1u8), 0u32..10, Just("x"));
        let (a, b, c) = s.generate(&mut rng());
        assert_eq!(a, 1);
        assert!(b < 10);
        assert_eq!(c, "x");
    }
}
