//! String strategies from regex-like patterns.
//!
//! Real proptest interprets `&str` strategies as full regexes via
//! `regex-syntax`. This shim implements the subset the workspace's tests
//! use and panics loudly on anything else, so an unsupported pattern fails
//! the test instead of silently generating wrong data:
//!
//! * literal characters, escaped literals (`\{`, `\.`, …)
//! * `\PC` — any printable character (ASCII-leaning, occasional unicode)
//! * character classes `[a-z0-9-]`, including ranges like `[ -~]`
//! * groups with alternation `(foo|bar|[a-z]{1,4}| )`
//! * quantifiers `*`, `+`, `?`, `{n}`, `{n,m}` (unbounded reps capped at 8)

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

const UNBOUNDED_MAX: u32 = 8;

#[derive(Debug, Clone)]
enum Node {
    Lit(char),
    /// Inclusive character ranges; a singleton is `(c, c)`.
    Class(Vec<(char, char)>),
    /// `\PC`: any printable (non-control) character.
    Printable,
    /// Alternation of sequences.
    Group(Vec<Vec<Term>>),
}

#[derive(Debug, Clone)]
struct Term {
    node: Node,
    min: u32,
    max: u32,
}

struct Parser<'a> {
    pattern: &'a str,
    chars: std::iter::Peekable<std::str::Chars<'a>>,
}

impl<'a> Parser<'a> {
    fn new(pattern: &'a str) -> Parser<'a> {
        Parser {
            pattern,
            chars: pattern.chars().peekable(),
        }
    }

    fn unsupported(&self, what: &str) -> ! {
        panic!(
            "proptest shim: unsupported regex construct {what:?} in pattern {:?}; \
             extend vendor/proptest/src/string.rs",
            self.pattern
        );
    }

    /// Parse a sequence of terms until end of input or a stop char (`|`,
    /// `)`) which is left unconsumed.
    fn sequence(&mut self) -> Vec<Term> {
        let mut out = Vec::new();
        while let Some(&c) = self.chars.peek() {
            if c == '|' || c == ')' {
                break;
            }
            let node = self.atom();
            let (min, max) = self.quantifier();
            out.push(Term { node, min, max });
        }
        out
    }

    fn atom(&mut self) -> Node {
        let c = self.chars.next().expect("atom: non-empty");
        match c {
            '\\' => match self.chars.next() {
                Some('P') => {
                    // Only the `\PC` (non-control) category is supported.
                    match self.chars.next() {
                        Some('C') => Node::Printable,
                        other => self.unsupported(&format!("\\P{other:?}")),
                    }
                }
                Some(
                    esc @ ('{' | '}' | '(' | ')' | '[' | ']' | '|' | '\\' | '.' | '*' | '+' | '?'
                    | '-' | '^' | '$'),
                ) => Node::Lit(esc),
                Some('n') => Node::Lit('\n'),
                Some('t') => Node::Lit('\t'),
                other => self.unsupported(&format!("escape \\{other:?}")),
            },
            '[' => self.class(),
            '(' => self.group(),
            '.' | '^' | '$' => self.unsupported(&format!("{c}")),
            _ => Node::Lit(c),
        }
    }

    fn class(&mut self) -> Node {
        let mut ranges = Vec::new();
        if self.chars.peek() == Some(&'^') {
            self.unsupported("negated class");
        }
        loop {
            let c = match self.chars.next() {
                Some(']') => break,
                Some('\\') => self
                    .chars
                    .next()
                    .unwrap_or_else(|| self.unsupported("trailing backslash in class")),
                Some(c) => c,
                None => self.unsupported("unterminated class"),
            };
            // `c-d` range, unless `-` is last (then it is a literal).
            if self.chars.peek() == Some(&'-') {
                let mut ahead = self.chars.clone();
                ahead.next();
                if ahead.peek().is_some_and(|&n| n != ']') {
                    self.chars.next();
                    let hi = self.chars.next().expect("range upper bound");
                    assert!(c <= hi, "inverted class range {c}-{hi}");
                    ranges.push((c, hi));
                    continue;
                }
            }
            ranges.push((c, c));
        }
        assert!(!ranges.is_empty(), "empty character class");
        Node::Class(ranges)
    }

    fn group(&mut self) -> Node {
        let mut alts = vec![self.sequence()];
        loop {
            match self.chars.next() {
                Some('|') => alts.push(self.sequence()),
                Some(')') => break,
                _ => self.unsupported("unterminated group"),
            }
        }
        Node::Group(alts)
    }

    fn quantifier(&mut self) -> (u32, u32) {
        match self.chars.peek() {
            Some('*') => {
                self.chars.next();
                (0, UNBOUNDED_MAX)
            }
            Some('+') => {
                self.chars.next();
                (1, UNBOUNDED_MAX)
            }
            Some('?') => {
                self.chars.next();
                (0, 1)
            }
            Some('{') => {
                self.chars.next();
                let mut min = String::new();
                let mut max = String::new();
                let mut in_max = false;
                loop {
                    match self.chars.next() {
                        Some('}') => break,
                        Some(',') => in_max = true,
                        Some(d) if d.is_ascii_digit() => {
                            if in_max { &mut max } else { &mut min }.push(d)
                        }
                        other => self.unsupported(&format!("quantifier char {other:?}")),
                    }
                }
                let lo: u32 = min.parse().expect("quantifier lower bound");
                let hi: u32 = if !in_max {
                    lo
                } else if max.is_empty() {
                    lo + UNBOUNDED_MAX
                } else {
                    max.parse().expect("quantifier upper bound")
                };
                assert!(lo <= hi, "inverted quantifier {{{lo},{hi}}}");
                (lo, hi)
            }
            _ => (1, 1),
        }
    }
}

fn emit(terms: &[Term], rng: &mut TestRng, out: &mut String) {
    for term in terms {
        let reps = rng.size_in(term.min as usize, term.max as usize);
        for _ in 0..reps {
            emit_node(&term.node, rng, out);
        }
    }
}

fn emit_node(node: &Node, rng: &mut TestRng, out: &mut String) {
    match node {
        Node::Lit(c) => out.push(*c),
        Node::Class(ranges) => {
            let (lo, hi) = ranges[rng.below(ranges.len() as u64) as usize];
            let span = hi as u32 - lo as u32 + 1;
            // Classes in the supported subset never straddle the surrogate
            // gap, so the arithmetic below always lands on a scalar value.
            let c = char::from_u32(lo as u32 + rng.below(span as u64) as u32)
                .expect("class range yields valid scalar");
            out.push(c);
        }
        Node::Printable => {
            // Mostly ASCII printable; occasionally multi-byte printables so
            // UTF-8 handling gets exercised.
            let c = match rng.below(10) {
                0 => ['é', 'ß', 'λ', 'Ж', '中', '🦀', '√', '…'][rng.below(8) as usize],
                _ => (0x20u8 + rng.below(0x5F) as u8) as char,
            };
            out.push(c);
        }
        Node::Group(alts) => {
            let alt = &alts[rng.below(alts.len() as u64) as usize];
            emit(alt, rng, out);
        }
    }
}

/// String-literal patterns are strategies generating matching strings.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut p = Parser::new(self);
        let terms = p.sequence();
        if p.chars.peek().is_some() {
            p.unsupported("top-level `|` or stray `)`");
        }
        let mut out = String::new();
        emit(&terms, rng, &mut out);
        out
    }
}

/// Owned patterns behave identically to `&str` patterns.
impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        self.as_str().generate(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_case(0x57e1, 0)
    }

    fn gen_many(pattern: &str, n: usize) -> Vec<String> {
        let mut r = rng();
        (0..n).map(|_| pattern.generate(&mut r)).collect()
    }

    #[test]
    fn literal_and_class() {
        for s in gen_many("IOR:[0-9a-fA-F]{0,200}", 50) {
            assert!(s.starts_with("IOR:"));
            assert!(s[4..].chars().all(|c| c.is_ascii_hexdigit()));
            assert!(s.len() - 4 <= 200);
        }
    }

    #[test]
    fn class_with_space_to_tilde_range() {
        for s in gen_many("[ -~]{0,40}", 50) {
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn trailing_dash_is_literal() {
        let all: String = gen_many("[a-z0-9-]{1,20}", 100).concat();
        assert!(all
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'));
    }

    #[test]
    fn printable_has_no_controls() {
        for s in gen_many("\\PC{0,100}", 50) {
            assert!(s.chars().all(|c| !c.is_control()), "control char in {s:?}");
            assert!(s.chars().count() <= 100);
        }
    }

    #[test]
    fn group_alternation() {
        let branches = ["ab", "cd", "x"];
        for s in gen_many("(ab|cd|x){1,3}", 100) {
            let mut rest = s.as_str();
            let mut parts = 0;
            while !rest.is_empty() {
                let hit = branches.iter().find(|b| rest.starts_with(**b)).unwrap();
                rest = &rest[hit.len()..];
                parts += 1;
            }
            assert!((1..=3).contains(&parts));
        }
    }

    #[test]
    fn escaped_braces_in_group() {
        let ok: &[char] = &['{', '}', ';', 'a'];
        for s in gen_many("(\\{|\\}|;|a){0,10}", 60) {
            assert!(s.chars().all(|c| ok.contains(&c)), "bad char in {s:?}");
        }
    }

    #[test]
    fn ident_shape() {
        for s in gen_many("[a-zA-Z_][a-zA-Z0-9_]{0,30}", 50) {
            let mut cs = s.chars();
            let first = cs.next().unwrap();
            assert!(first.is_ascii_alphabetic() || first == '_');
            assert!(cs.all(|c| c.is_ascii_alphanumeric() || c == '_'));
        }
    }

    #[test]
    #[should_panic(expected = "unsupported regex construct")]
    fn unsupported_constructs_fail_loud() {
        "a.*b".generate(&mut rng());
    }
}
