//! End-to-end request-span timelines: one traced invocation must yield a
//! complete causal timeline — every data-path stage from client marshal to
//! client reply-demarshal — joined across both endpoints on the `ZC_TRACE`
//! trace id, with provable happens-before edges and a critical-path sum
//! bounded by the observed round trip. The degrade and retry paths from the
//! fault model must keep producing well-formed spans.

use std::sync::Arc;
use std::time::Instant;

use zcorba::cdr::ZcOctetSeq;
use zcorba::orb::{ConnTuning, ObjectAdapterExt, Orb, OrbResult, Servant, ServerRequest};
use zcorba::trace::{span_timelines, SpanTimeline, Stage, Telemetry};
use zcorba::transport::{FaultPlan, FaultSide, SimConfig, SimNetwork};

struct Echo;
impl Servant for Echo {
    fn repo_id(&self) -> &'static str {
        "IDL:it/Echo:1.0"
    }
    fn dispatch(&self, op: &str, req: &mut ServerRequest<'_>) -> OrbResult<()> {
        match op {
            "echo" => {
                let d: ZcOctetSeq = req.arg()?;
                req.result(&d)
            }
            other => req.bad_operation(other),
        }
    }
}

/// Run `calls` traced echo invocations over a pair of ORBs sharing
/// `telemetry`; returns the joined timelines and the last observed
/// client-side round-trip time in nanoseconds.
fn traced_calls(
    client: &Orb,
    server_orb: &Orb,
    telemetry: &Telemetry,
    calls: usize,
    idempotent: bool,
) -> (Vec<SpanTimeline>, u64) {
    server_orb.adapter().register("echo", Arc::new(Echo));
    let server = server_orb.serve(0).unwrap();
    let obj = client
        .resolve(&server.ior_for("echo", "IDL:it/Echo:1.0").unwrap())
        .unwrap();
    let mut rtt_ns = 0;
    for _ in 0..calls {
        let payload = ZcOctetSeq::with_length(64 << 10);
        let t0 = Instant::now();
        let mut req = obj.request("echo");
        if idempotent {
            req = req.idempotent();
        }
        let back: ZcOctetSeq = req
            .arg(&payload)
            .unwrap()
            .invoke()
            .unwrap()
            .result()
            .unwrap();
        rtt_ns = t0.elapsed().as_nanos() as u64;
        assert_eq!(back.len(), 64 << 10);
    }
    let timelines = span_timelines(&telemetry.recorder().events());
    server.shutdown();
    (timelines, rtt_ns)
}

/// The timeline covering the request whose round trip we measured: the one
/// with the most stages (ties broken by latest trace id, i.e. last request).
fn fullest(timelines: &[SpanTimeline]) -> &SpanTimeline {
    timelines
        .iter()
        .max_by_key(|t| (t.stage_count(), t.trace_id))
        .expect("at least one request span recorded")
}

fn assert_complete_and_causal(tl: &SpanTimeline, rtt_ns: u64) {
    assert_ne!(tl.trace_id, 0);
    for stage in Stage::ALL {
        assert!(
            tl.get(stage).is_some(),
            "stage `{}` missing from timeline {:#x}",
            stage.name(),
            tl.trace_id
        );
    }
    let s = |stage: Stage| tl.get(stage).unwrap();

    // The two halves really come from the two endpoints of one connection.
    assert_ne!(
        s(Stage::ClientMarshal).conn_id,
        s(Stage::ServerRecv).conn_id,
        "client and server stages must carry distinct endpoint conn ids"
    );
    for stage in Stage::ALL {
        let expect = if stage.is_client() {
            s(Stage::ClientMarshal).conn_id
        } else {
            s(Stage::ServerRecv).conn_id
        };
        assert_eq!(s(stage).conn_id, expect, "stage `{}`", stage.name());
    }

    // Happens-before edges on commit timestamps (one shared in-process
    // trace clock). The server records every one of its stages before it
    // puts the reply on the wire, and the client records its reply-side
    // stages only after that reply arrived — so every server commit must
    // precede every client reply-side commit. (The request side has no
    // such provable edge: the client commits its send-side stages *after*
    // the bytes are already on the wire, racing the server's receive.)
    for server_stage in Stage::ALL.into_iter().filter(|s| !s.is_client()) {
        for reply_stage in [Stage::ClientReplyWire, Stage::ClientReplyDemarshal] {
            assert!(
                s(reply_stage).ts_ns >= s(server_stage).ts_ns,
                "client `{}` committed before server `{}`",
                reply_stage.name(),
                server_stage.name()
            );
        }
    }

    // The disjoint critical-path legs must fit inside the round trip the
    // client observed around the same invocation (generous slack for the
    // commit points sitting just outside the `Instant` bracket).
    let path = tl.critical_path_ns();
    assert!(path > 0, "critical path must account for real work");
    assert!(
        path <= rtt_ns + 2_000_000,
        "critical path {path} ns exceeds observed round trip {rtt_ns} ns"
    );
}

#[test]
fn one_request_yields_a_complete_timeline_over_sim() {
    let telemetry = Telemetry::new_shared();
    let net = SimNetwork::new(SimConfig::zero_copy());
    let server_orb = Orb::builder()
        .sim(net.clone())
        .telemetry(Arc::clone(&telemetry))
        .build();
    let client = Orb::builder()
        .sim(net)
        .telemetry(Arc::clone(&telemetry))
        .build();
    let (timelines, rtt_ns) = traced_calls(&client, &server_orb, &telemetry, 1, false);
    let tl = fullest(&timelines);
    assert_complete_and_causal(tl, rtt_ns);
}

#[test]
fn one_request_yields_a_complete_timeline_over_tcp() {
    let telemetry = Telemetry::new_shared();
    let server_orb = Orb::builder()
        .tcp()
        .telemetry(Arc::clone(&telemetry))
        .build();
    let client = Orb::builder()
        .tcp()
        .telemetry(Arc::clone(&telemetry))
        .build();
    let (timelines, rtt_ns) = traced_calls(&client, &server_orb, &telemetry, 1, false);
    let tl = fullest(&timelines);
    assert_complete_and_causal(tl, rtt_ns);
}

#[test]
fn degraded_zero_copy_path_still_produces_well_formed_spans() {
    let telemetry = Telemetry::new_shared();
    let net = SimNetwork::new(SimConfig::zero_copy());
    // Small degrade window so the forced misses flip the sender quickly.
    let tuning = ConnTuning {
        degrade_window: 4,
        degrade_threshold: 0.5,
        probe_interval: 3,
        ..ConnTuning::default()
    };
    let server_orb = Orb::builder()
        .sim(net.clone())
        .tuning(tuning)
        .telemetry(Arc::clone(&telemetry))
        .build();
    let client = Orb::builder()
        .sim(net.clone())
        .tuning(tuning)
        .telemetry(Arc::clone(&telemetry))
        .build();
    // Every receive-side speculation misses: the sender degrades to the
    // inline-marshal fallback mid-run. Spans must stay complete through
    // the mode flip — the fallback still walks every stage.
    net.inject_faults(FaultPlan::spec_miss(1.0).on(FaultSide::Server));
    let (timelines, rtt_ns) = traced_calls(&client, &server_orb, &telemetry, 8, false);
    assert!(timelines.len() >= 8, "one timeline per logical request");
    assert_complete_and_causal(fullest(&timelines), rtt_ns);
    for tl in &timelines {
        for stage in Stage::ALL {
            assert!(
                tl.get(stage).is_some(),
                "degraded request {:#x} lost stage `{}`",
                tl.trace_id,
                stage.name()
            );
        }
    }
}

#[test]
fn retried_request_still_produces_well_formed_spans() {
    let telemetry = Telemetry::new_shared();
    let net = SimNetwork::new(SimConfig::zero_copy());
    let server_orb = Orb::builder()
        .sim(net.clone())
        .telemetry(Arc::clone(&telemetry))
        .build();
    let client = Orb::builder()
        .sim(net.clone())
        .telemetry(Arc::clone(&telemetry))
        .build();
    server_orb.adapter().register("echo", Arc::new(Echo));
    let server = server_orb.serve(0).unwrap();
    let obj = client
        .resolve(&server.ior_for("echo", "IDL:it/Echo:1.0").unwrap())
        .unwrap();
    let call = |idempotent: bool| -> u64 {
        let payload = ZcOctetSeq::with_length(16 << 10);
        let t0 = Instant::now();
        let mut req = obj.request("echo");
        if idempotent {
            req = req.idempotent();
        }
        let back: ZcOctetSeq = req
            .arg(&payload)
            .unwrap()
            .invoke()
            .unwrap()
            .result()
            .unwrap();
        assert_eq!(back.len(), 16 << 10);
        t0.elapsed().as_nanos() as u64
    };
    // Warm the connection, then sever the server's wire on its next sent
    // frame: the reply dies, the idempotent call transparently retries on
    // a healed connection.
    call(false);
    net.inject_faults(FaultPlan::cut_after(0).on(FaultSide::Server));
    let rtt_ns = call(true);
    assert!(
        telemetry.metrics().snapshot().retries >= 1,
        "fixture must actually exercise the retry path"
    );
    let timelines = span_timelines(&telemetry.recorder().events());
    server.shutdown();
    // Every recorded timeline is internally consistent: no stage from a
    // foreign endpoint, durations packed/unpacked intact. The retried
    // request's final attempt forms a complete causal timeline.
    let tl = fullest(&timelines);
    assert_complete_and_causal(tl, rtt_ns);
    for tl in &timelines {
        assert_ne!(tl.trace_id, 0);
        assert!(tl.stage_count() > 0);
    }
}
