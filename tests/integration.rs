//! Workspace-level integration tests: exercises spanning all crates
//! through the `zcorba` umbrella API.

use std::sync::Arc;

use zcorba::buffers::{AlignedBuf, CopyLayer, CopyMeter, ZcBytes};
use zcorba::cdr::{OctetSeq, ZcOctetSeq};
use zcorba::orb::{ObjectAdapterExt, Orb, OrbResult, Servant, ServerRequest};
use zcorba::transport::{SimConfig, SimNetwork};

struct Echo;
impl Servant for Echo {
    fn repo_id(&self) -> &'static str {
        "IDL:it/Echo:1.0"
    }
    fn dispatch(&self, op: &str, req: &mut ServerRequest<'_>) -> OrbResult<()> {
        match op {
            "echo" => {
                let d: ZcOctetSeq = req.arg()?;
                req.result(&d)
            }
            "echo_std" => {
                let d: OctetSeq = req.arg()?;
                req.result(&d)
            }
            other => req.bad_operation(other),
        }
    }
}

/// The whole-system zero-copy proof, at the paper's largest transfer size,
/// through the umbrella API.
#[test]
fn sixteen_megabyte_transfer_is_strictly_zero_copy() {
    let meter = CopyMeter::new_shared();
    let net = SimNetwork::new(SimConfig::zero_copy());
    let server_orb = Orb::builder()
        .sim(net.clone())
        .meter(Arc::clone(&meter))
        .build();
    server_orb.adapter().register("echo", Arc::new(Echo));
    let server = server_orb.serve(0).unwrap();
    let client = Orb::builder().sim(net).meter(Arc::clone(&meter)).build();
    let obj = client
        .resolve(&server.ior_for("echo", "IDL:it/Echo:1.0").unwrap())
        .unwrap();

    let n = 16 << 20;
    let payload = ZcOctetSeq::with_length(n);
    let before = meter.snapshot();
    let back: ZcOctetSeq = obj
        .request("echo")
        .arg(&payload)
        .unwrap()
        .invoke()
        .unwrap()
        .result()
        .unwrap();
    let delta = meter.snapshot().since(&before);

    assert!(back.ptr_eq(&payload));
    assert_eq!(
        delta.bytes(CopyLayer::Marshal)
            + delta.bytes(CopyLayer::Demarshal)
            + delta.bytes(CopyLayer::KernelFrag)
            + delta.bytes(CopyLayer::KernelDefrag)
            + delta.bytes(CopyLayer::DepositFallback),
        0
    );
    assert!(
        delta.overhead_bytes() < 1024,
        "32 MiB of payload moved with {} bytes of control copies",
        delta.overhead_bytes()
    );
}

/// The conventional path at the same size copies the payload at six
/// layers — the quantitative contrast behind Figure 5.
#[test]
fn conventional_path_copy_count_is_six_per_direction() {
    let meter = CopyMeter::new_shared();
    let net = SimNetwork::new(SimConfig::copying());
    let server_orb = Orb::builder()
        .sim(net.clone())
        .meter(Arc::clone(&meter))
        .build();
    server_orb.adapter().register("echo", Arc::new(Echo));
    let server = server_orb.serve(0).unwrap();
    let client = Orb::builder().sim(net).meter(Arc::clone(&meter)).build();
    let obj = client
        .resolve(&server.ior_for("echo", "IDL:it/Echo:1.0").unwrap())
        .unwrap();

    let n: usize = 1 << 20;
    let data = OctetSeq(vec![7u8; n]);
    let before = meter.snapshot();
    let back: OctetSeq = obj
        .request("echo_std")
        .arg(&data)
        .unwrap()
        .invoke()
        .unwrap()
        .result()
        .unwrap();
    assert_eq!(back, data);
    let d = meter.snapshot().since(&before);
    // 2 MiB of payload moved (there and back); each direction is copied at
    // marshal, socket-send, kernel-frag, kernel-defrag, socket-recv,
    // demarshal → ≈ 6 copies per payload byte.
    let factor = d.overhead_bytes() as f64 / (2 * n) as f64;
    assert!(
        (5.8..6.3).contains(&factor),
        "copy factor {factor:.2}, expected ≈ 6"
    );
}

/// Measured-versus-modeled consistency: the host-measured TTCP ordering of
/// the four versions must match the calibrated model's ordering (the
/// "shape" criterion for the reproduction).
#[test]
fn measured_ordering_matches_modeled_ordering() {
    use zcorba::ttcp::{run_measured, run_modeled, TtcpParams, TtcpVersion};
    let block = 1 << 20;
    let total = 16 << 20;
    let versions = [
        TtcpVersion::CorbaStd,
        TtcpVersion::RawTcp,
        TtcpVersion::CorbaZc,
    ];
    let measured: Vec<f64> = versions
        .iter()
        .map(|&v| run_measured(&TtcpParams::new(v, block, total)).mbit_s)
        .collect();
    let modeled: Vec<f64> = versions.iter().map(|&v| run_modeled(v, block)).collect();
    // CorbaStd < RawTcp < CorbaZc in both worlds
    assert!(modeled[0] < modeled[1] && modeled[1] < modeled[2]);
    assert!(
        measured[0] < measured[1] && measured[1] < measured[2],
        "measured ordering broke: std {:.0}, raw {:.0}, zc {:.0}",
        measured[0],
        measured[1],
        measured[2]
    );
}

/// The IDL compiler accepts the contract these tests implement by hand and
/// generates the matching stub names (the end-to-end run of generated code
/// lives in the `zc-idl-gentest` crate).
#[test]
fn idl_compiler_accepts_the_test_contract() {
    let idl = r#"
        module it {
          interface Echo {
            sequence<zc_octet> echo(in sequence<zc_octet> d);
            sequence<octet> echo_std(in sequence<octet> d);
          };
        };
    "#;
    let rust = zcorba::idl::compile_str(idl).unwrap();
    assert!(rust.contains("pub struct EchoClient"));
    assert!(rust.contains("pub trait Echo"));
    assert!(rust.contains("\"IDL:it/Echo:1.0\""));
}

/// Buffer-pool recycling keeps allocation churn bounded across many
/// requests (the "memory allocation is a minor overhead" claim depends on
/// this).
#[test]
fn pool_recycling_bounds_allocations() {
    // the copying stack acquires a kernel-side pool buffer per send and a
    // user-side one per receive — exactly the churn the pool must absorb
    let net = SimNetwork::new(SimConfig::copying());
    let server_orb = Orb::builder().sim(net.clone()).build();
    server_orb.adapter().register("echo", Arc::new(Echo));
    let server = server_orb.serve(0).unwrap();
    let client = Orb::builder().sim(net).build();
    let obj = client
        .resolve(&server.ior_for("echo", "IDL:it/Echo:1.0").unwrap())
        .unwrap();

    for round in 0..100 {
        let d = OctetSeq(vec![round as u8; 64 << 10]);
        let back: OctetSeq = obj
            .request("echo_std")
            .arg(&d)
            .unwrap()
            .invoke()
            .unwrap()
            .result()
            .unwrap();
        assert_eq!(back, d);
    }
    let stats = client.pool().stats();
    assert!(
        stats.reuses > stats.fresh_allocations,
        "pool should recycle: {stats:?}"
    );
}

/// Killing the server mid-conversation surfaces as a transport error on
/// the client, not a hang or a panic.
#[test]
fn server_death_is_a_clean_client_error() {
    let net = SimNetwork::new(SimConfig::copying());
    let server_orb = Orb::builder().sim(net.clone()).build();
    server_orb.adapter().register("echo", Arc::new(Echo));
    let server = server_orb.serve(0).unwrap();
    let client = Orb::builder().sim(net).build();
    let obj = client
        .resolve(&server.ior_for("echo", "IDL:it/Echo:1.0").unwrap())
        .unwrap();
    // healthy request
    obj.request("echo_std")
        .arg(&OctetSeq(vec![1]))
        .unwrap()
        .invoke()
        .unwrap();
    server.shutdown();
    drop(server_orb);
    // The server ORB's acceptor is gone; existing connection threads drain
    // when the client drops. A request on a fresh connection must fail.
    let fresh = Orb::builder()
        .sim(SimNetwork::new(SimConfig::copying()))
        .build();
    assert!(fresh.resolve_str("IOR:deadbeef").is_err());
}

/// ZcBytes payloads assembled from pool buffers survive end-to-end and
/// return their pages to the pool afterwards.
#[test]
fn pooled_payload_roundtrip_and_return() {
    let net = SimNetwork::new(SimConfig::zero_copy());
    let server_orb = Orb::builder().sim(net.clone()).build();
    server_orb.adapter().register("echo", Arc::new(Echo));
    let server = server_orb.serve(0).unwrap();
    let client = Orb::builder().sim(net).build();
    let obj = client
        .resolve(&server.ior_for("echo", "IDL:it/Echo:1.0").unwrap())
        .unwrap();

    let pool = client.pool();
    {
        let mut lease = pool.acquire(256 << 10);
        lease.extend_from_slice(&vec![9u8; 256 << 10]);
        let payload = ZcOctetSeq::from_zc(lease.freeze());
        let back: ZcOctetSeq = obj
            .request("echo")
            .arg(&payload)
            .unwrap()
            .invoke()
            .unwrap()
            .result()
            .unwrap();
        assert!(back.ptr_eq(&payload));
    } // all views dropped → pages must return
    let stats = pool.stats();
    assert!(stats.returns >= 1, "{stats:?}");
}

/// A mixed fleet: ZC and non-ZC clients of the same server, interleaved,
/// all correct.
#[test]
fn mixed_capability_clients_share_one_server() {
    let net = SimNetwork::new(SimConfig::zero_copy());
    let server_orb = Orb::builder().sim(net.clone()).zc(true).build();
    server_orb.adapter().register("echo", Arc::new(Echo));
    let server = server_orb.serve(0).unwrap();
    let ior = server.ior_for("echo", "IDL:it/Echo:1.0").unwrap();

    let zc_client = Orb::builder().sim(net.clone()).zc(true).build();
    let plain_client = Orb::builder().sim(net.clone()).zc(false).build();
    let foreign_client = Orb::builder().sim(net).pretend_foreign(true).build();

    let payload: Vec<u8> = (0..50_000).map(|i| (i % 256) as u8).collect();
    for (client, expect_zc) in [
        (&zc_client, true),
        (&plain_client, false),
        (&foreign_client, false),
    ] {
        let obj = client.resolve(&ior).unwrap();
        assert_eq!(obj.is_zero_copy(), expect_zc);
        let blob = ZcOctetSeq::from_zc({
            let mut b = AlignedBuf::with_capacity(payload.len());
            b.extend_from_slice(&payload);
            ZcBytes::from_aligned(b)
        });
        let back: ZcOctetSeq = obj
            .request("echo")
            .arg(&blob)
            .unwrap()
            .invoke()
            .unwrap()
            .result()
            .unwrap();
        assert_eq!(&back[..], &payload[..]);
    }
}

/// The simnet DES and the measured stack agree on *relative* cost: the
/// zero-copy configuration beats copying by a larger factor at larger
/// blocks (per-request overheads amortize).
#[test]
fn zero_copy_advantage_grows_with_block_size() {
    use zcorba::ttcp::{run_measured, TtcpParams, TtcpVersion};
    let ratio = |block: usize| {
        let total = (block * 8).max(8 << 20);
        let std = run_measured(&TtcpParams::new(TtcpVersion::CorbaStd, block, total)).mbit_s;
        let zc = run_measured(&TtcpParams::new(TtcpVersion::CorbaZc, block, total)).mbit_s;
        zc / std
    };
    let small = ratio(16 << 10);
    let large = ratio(4 << 20);
    assert!(
        large > small,
        "zc/std ratio should grow with block size: small {small:.2}, large {large:.2}"
    );
}
