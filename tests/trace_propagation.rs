//! End-to-end trace propagation: the `ZC_TRACE` service context carries the
//! client's trace id to the server, so both sides' flight-recorder spans
//! correlate; unknown service contexts are skipped, never rejected.

use std::sync::Arc;

use zcorba::cdr::ZcOctetSeq;
use zcorba::orb::{ObjectAdapterExt, Orb, OrbResult, Servant, ServerRequest};
use zcorba::trace::{EventKind, Telemetry, TraceEvent};
use zcorba::transport::{SimConfig, SimNetwork};

struct Echo;
impl Servant for Echo {
    fn repo_id(&self) -> &'static str {
        "IDL:it/Echo:1.0"
    }
    fn dispatch(&self, op: &str, req: &mut ServerRequest<'_>) -> OrbResult<()> {
        match op {
            "echo" => {
                let d: ZcOctetSeq = req.arg()?;
                req.result(&d)
            }
            "echo_std" => {
                let d: zcorba::cdr::OctetSeq = req.arg()?;
                req.result(&d)
            }
            other => req.bad_operation(other),
        }
    }
}

fn find(events: &[TraceEvent], kind: EventKind) -> Option<&TraceEvent> {
    events.iter().find(|e| e.kind == kind)
}

/// Run one traced invocation over a pair of ORBs sharing `telemetry`;
/// returns the recorded events.
fn one_traced_call(client: &Orb, server_orb: &Orb, telemetry: &Telemetry) -> Vec<TraceEvent> {
    server_orb.adapter().register("echo", Arc::new(Echo));
    let server = server_orb.serve(0).unwrap();
    let obj = client
        .resolve(&server.ior_for("echo", "IDL:it/Echo:1.0").unwrap())
        .unwrap();
    let payload = ZcOctetSeq::with_length(64 << 10);
    let back: ZcOctetSeq = obj
        .request("echo")
        .arg(&payload)
        .unwrap()
        .invoke()
        .unwrap()
        .result()
        .unwrap();
    assert_eq!(back.len(), 64 << 10);
    let events = telemetry.recorder().events();
    server.shutdown();
    events
}

fn assert_spans_correlate(events: &[TraceEvent]) {
    let sent = find(events, EventKind::RequestSent).expect("client span recorded");
    let received = find(events, EventKind::RequestReceived).expect("server span recorded");
    assert_ne!(sent.trace_id, 0, "requests are stamped with a trace id");
    assert_eq!(
        sent.trace_id, received.trace_id,
        "server span carries the client's trace id"
    );
    assert_ne!(
        sent.conn_id, received.conn_id,
        "the two spans come from the two connection endpoints"
    );
    let dispatch = find(events, EventKind::Dispatch).expect("server dispatch recorded");
    assert_eq!(dispatch.trace_id, sent.trace_id);
    let invoke = find(events, EventKind::Invoke).expect("client invoke recorded");
    assert_eq!(invoke.trace_id, sent.trace_id);
}

#[test]
fn trace_id_propagates_over_sim() {
    let telemetry = Telemetry::new_shared();
    let net = SimNetwork::new(SimConfig::zero_copy());
    let server_orb = Orb::builder()
        .sim(net.clone())
        .telemetry(Arc::clone(&telemetry))
        .build();
    let client = Orb::builder()
        .sim(net)
        .telemetry(Arc::clone(&telemetry))
        .build();
    let events = one_traced_call(&client, &server_orb, &telemetry);
    assert_spans_correlate(&events);
    assert!(find(&events, EventKind::DepositSent).is_some());
    assert!(find(&events, EventKind::DepositReceived).is_some());
}

#[test]
fn trace_id_propagates_over_tcp() {
    let telemetry = Telemetry::new_shared();
    let server_orb = Orb::builder()
        .tcp()
        .telemetry(Arc::clone(&telemetry))
        .build();
    let client = Orb::builder()
        .tcp()
        .telemetry(Arc::clone(&telemetry))
        .build();
    let events = one_traced_call(&client, &server_orb, &telemetry);
    assert_spans_correlate(&events);
}

#[test]
fn telemetry_snapshot_merges_all_sources() {
    let telemetry = Telemetry::new_shared();
    let net = SimNetwork::new(SimConfig::zero_copy());
    let server_orb = Orb::builder()
        .sim(net.clone())
        .telemetry(Arc::clone(&telemetry))
        .build();
    let client = Orb::builder()
        .sim(net)
        .telemetry(Arc::clone(&telemetry))
        .build();
    let _ = one_traced_call(&client, &server_orb, &telemetry);

    let snap = client.telemetry_snapshot();
    assert!(snap.enabled);
    assert!(snap.events_recorded > 0);
    assert!(snap.metrics.requests_sent >= 1);
    assert!(snap.metrics.requests_received >= 1);
    assert!(snap.metrics.trace_contexts_seen >= 1);
    assert!(
        snap.metrics.request_latency_ns.count >= 1,
        "request-latency histogram populated"
    );
    assert!(snap.metrics.deposit_block_bytes.count >= 1);
    assert!(snap.transport.bytes_sent > 0, "merged transport totals");
    assert!(snap.transport.wire_bytes_recv > 0);
    assert!(snap.copies.total_bytes() > 0, "merged copy meter");

    let table = snap.text_table();
    assert!(table.contains("zcorba telemetry"));
    assert!(table.contains("request_latency_ns"));
    let json = snap.json_lines();
    assert!(json.lines().count() > 5);
    assert!(json.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
}

/// A hand-rolled client sends a Request carrying an *unknown* service
/// context (plus a trace context): the server must skip the unknown one
/// per standard CORBA rules — the request succeeds — while still honoring
/// the trace id next to it.
#[test]
fn unknown_service_context_is_ignored_not_rejected() {
    use zcorba::cdr::{ByteOrder, CdrDecoder, CdrEncoder};
    use zcorba::giop::{
        fragment_frames, GiopHeader, Handshake, MessageType, ReplyHeader, ReplyStatus,
        RequestHeader, ServiceContext, TraceContext, GIOP_HEADER_LEN,
    };
    use zcorba::transport::TransportCtx;

    let telemetry = Telemetry::new_shared();
    let net = SimNetwork::new(SimConfig::zero_copy());
    let server_orb = Orb::builder()
        .sim(net.clone())
        .telemetry(Arc::clone(&telemetry))
        .build();
    server_orb.adapter().register("echo", Arc::new(Echo));
    let server = server_orb.serve(0).unwrap();

    // Raw transport connection, no GiopConn on our side: we are the
    // "foreign peer" composing messages by hand.
    let mut conn = net.connect(server.port(), TransportCtx::new()).unwrap();
    conn.send_control(&Handshake::foreign().encode()).unwrap();
    let _server_handshake = conn.recv_control().unwrap();

    let order = ByteOrder::Big; // the GIOP frame flags carry the order
    let mut header = RequestHeader::new(9, b"echo".to_vec(), "echo_std");
    header.response_expected = true;
    header.service_contexts.push(ServiceContext {
        id: 0x4646_0001, // not a zcorba context id
        data: vec![0xDE, 0xAD, 0xBE, 0xEF],
    });
    header.service_contexts.push(
        TraceContext {
            trace_id: 777,
            ..Default::default()
        }
        .to_context(),
    );
    let mut enc = CdrEncoder::new(order);
    header.marshal(&mut enc).unwrap();
    enc.align(8);
    enc.write_octet_seq(&[1, 2, 3, 4]); // echo_std's OctetSeq argument
    let body = enc.finish_stream();
    for frame in fragment_frames(
        zcorba::giop::GiopVersion::V1_2,
        order,
        MessageType::Request,
        &body,
        4 << 20,
    ) {
        conn.send_control(&frame).unwrap();
    }

    let raw = conn.recv_control().unwrap();
    let hdr_bytes: [u8; GIOP_HEADER_LEN] = raw[..GIOP_HEADER_LEN].try_into().unwrap();
    let hdr = GiopHeader::decode(&hdr_bytes).unwrap();
    assert_eq!(hdr.msg_type, MessageType::Reply);
    let mut dec = CdrDecoder::new(&raw[GIOP_HEADER_LEN..], hdr.flags.order);
    let reply = ReplyHeader::demarshal(&mut dec).unwrap();
    assert_eq!(reply.request_id, 9);
    assert_eq!(
        reply.status,
        ReplyStatus::NoException,
        "unknown service context must be skipped, not faulted"
    );

    // The trace context riding alongside the unknown one was honored.
    let events = telemetry.recorder().events();
    let received = find(&events, EventKind::RequestReceived).expect("server span");
    assert_eq!(received.trace_id, 777);
    assert_eq!(telemetry.metrics().snapshot().trace_contexts_seen, 1);
    server.shutdown();
}
